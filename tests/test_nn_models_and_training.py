"""Tests for the model zoo, the trainer and the dataset substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DataLoader,
    ImageSpec,
    build_dataset,
    build_prototypes,
    sample_calibration_set,
    sample_images,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)
from repro.nn import Adam, CrossEntropyLoss, SGD, Trainer
from repro.nn.models import (
    BasicBlock,
    Fire,
    LeNet5,
    ResNet18,
    ResNet20,
    SqueezeNet11,
    available_models,
    build_model,
    workload_info,
)


# --------------------------------------------------------------------- #
# datasets
# --------------------------------------------------------------------- #
class TestDatasets:
    def test_factories_shapes(self):
        mnist = synthetic_mnist(train_size=32, test_size=16, seed=0)
        cifar = synthetic_cifar10(train_size=32, test_size=16, seed=0)
        imagenet = synthetic_imagenet(train_size=32, test_size=16, seed=0, image_size=48)
        assert mnist.train.images.shape == (32, 1, 28, 28)
        assert cifar.test.images.shape == (16, 3, 32, 32)
        assert imagenet.image_shape == (3, 48, 48)
        assert mnist.num_classes == 10

    def test_images_normalised_and_deterministic(self):
        a = synthetic_cifar10(train_size=16, test_size=8, seed=5)
        b = synthetic_cifar10(train_size=16, test_size=8, seed=5)
        assert a.train.images.min() >= 0.0 and a.train.images.max() <= 1.0
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)
        c = synthetic_cifar10(train_size=16, test_size=8, seed=6)
        assert not np.array_equal(a.train.images, c.train.images)

    def test_prototypes_are_class_specific(self):
        spec = ImageSpec(num_classes=4, channels=3, height=16, width=16)
        protos = build_prototypes(spec, seed=1)
        assert protos.shape == (4, 3, 16, 16)
        assert not np.allclose(protos[0], protos[1])

    def test_sample_images_shapes_and_jitter(self, rng):
        spec = ImageSpec(num_classes=3, channels=1, height=12, width=12)
        protos = build_prototypes(spec, seed=0)
        labels = np.array([0, 1, 2, 0])
        images = sample_images(spec, labels, protos, rng=rng)
        assert images.shape == (4, 1, 12, 12)
        # Jitter means two samples of the same class differ.
        again = sample_images(spec, labels, protos, rng=rng)
        assert not np.allclose(images, again)

    def test_build_dataset_by_name(self):
        ds = build_dataset("mnist", train_size=8, test_size=4, seed=0)
        assert ds.name == "synthetic-mnist"
        with pytest.raises(KeyError):
            build_dataset("svhn")

    def test_dataset_split_subset_and_validation(self):
        ds = synthetic_mnist(train_size=16, test_size=8, seed=0)
        subset = ds.train.subset(np.array([0, 3, 5]))
        assert len(subset) == 3
        with pytest.raises(ValueError):
            type(ds.train)(images=ds.train.images, labels=ds.train.labels[:-1])

    def test_dataloader_batching_and_shuffle(self):
        ds = synthetic_mnist(train_size=20, test_size=8, seed=0)
        loader = DataLoader(ds.train, batch_size=8, shuffle=False)
        batches = list(loader)
        assert len(loader) == 3 and batches[-1][0].shape[0] == 4
        drop = DataLoader(ds.train, batch_size=8, drop_last=True)
        assert len(drop) == 2 and all(x.shape[0] == 8 for x, _ in drop)
        shuffled = DataLoader(ds.train, batch_size=20, shuffle=True, seed=1)
        (x1, y1), = list(shuffled)
        assert not np.array_equal(y1, ds.train.labels)
        assert sorted(y1.tolist()) == sorted(ds.train.labels.tolist())

    def test_calibration_sampling(self):
        ds = synthetic_mnist(train_size=64, test_size=8, seed=0)
        calib = sample_calibration_set(ds.train, num_images=20, seed=0)
        assert len(calib) == 20
        # Stratified sampling covers most classes.
        assert len(np.unique(calib.labels)) >= 8
        random_calib = sample_calibration_set(ds.train, num_images=20, stratified=False, seed=0)
        assert len(random_calib) == 20
        with pytest.raises(ValueError):
            sample_calibration_set(ds.train, num_images=1000)


# --------------------------------------------------------------------- #
# model zoo
# --------------------------------------------------------------------- #
class TestModels:
    def test_registry_contents(self):
        assert set(available_models()) == {"lenet5", "resnet20", "resnet18", "squeezenet1_1"}
        info = workload_info("resnet20")
        assert info["dataset"] == "cifar10"
        with pytest.raises(KeyError):
            workload_info("vgg16")
        with pytest.raises(KeyError):
            build_model("lenet5", preset="huge")
        with pytest.raises(KeyError):
            build_model("alexnet")

    @pytest.mark.parametrize("name,shape", [
        ("lenet5", (2, 1, 28, 28)),
        ("resnet20", (2, 3, 32, 32)),
        ("resnet18", (2, 3, 32, 32)),
        ("squeezenet1_1", (2, 3, 32, 32)),
    ])
    def test_forward_shapes(self, name, shape, rng):
        model = build_model(name, preset="tiny", rng=0)
        model.eval()
        out = model(rng.normal(size=shape))
        assert out.shape == (2, 10)
        assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("name,shape", [
        ("lenet5", (2, 1, 28, 28)),
        ("resnet20", (2, 3, 32, 32)),
        ("squeezenet1_1", (2, 3, 32, 32)),
    ])
    def test_backward_produces_gradients(self, name, shape, rng):
        model = build_model(name, preset="tiny", rng=0)
        model.train()
        x = rng.normal(size=shape)
        labels = np.array([0, 1])
        loss = CrossEntropyLoss()
        loss(model(x), labels)
        model.zero_grad()
        model(x)
        model.backward(loss.backward())
        grad_norms = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grad_norms) > len(grad_norms) // 2

    def test_basic_block_residual_path(self, rng):
        block = BasicBlock(4, 8, stride=2, seed=0)
        block.eval()
        out = block(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 8, 4, 4)
        identity_block = BasicBlock(4, 4, stride=1, seed=0)
        identity_block.eval()
        assert identity_block(rng.normal(size=(2, 4, 8, 8))).shape == (2, 4, 8, 8)

    def test_fire_module_concatenation(self, rng):
        fire = Fire(8, 4, 6, 6, seed=0)
        out = fire(rng.normal(size=(2, 8, 6, 6)))
        assert out.shape == (2, 12, 6, 6)

    def test_resnet18_full_input_stem(self, rng):
        model = ResNet18(num_classes=5, width_multiplier=0.25, small_input=False, rng=0)
        model.eval()
        out = model(rng.normal(size=(1, 3, 64, 64)))
        assert out.shape == (1, 5)

    def test_lenet_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            LeNet5(image_size=8)

    def test_reproducible_initialisation(self):
        a = build_model("resnet20", preset="tiny", rng=3)
        b = build_model("resnet20", preset="tiny", rng=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


# --------------------------------------------------------------------- #
# trainer
# --------------------------------------------------------------------- #
class TestTrainer:
    def test_training_reduces_loss_and_reaches_above_chance(self):
        ds = synthetic_mnist(train_size=128, test_size=64, seed=2)
        model = build_model("lenet5", preset="tiny", rng=2)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3))
        history = trainer.fit(
            lambda: DataLoader(ds.train, 32, shuffle=True, seed=0),
            epochs=8,
            val_loader_fn=lambda: DataLoader(ds.test, 64),
        )
        assert len(history.epochs) == 8
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
        assert history.final_train_accuracy > 0.2  # well above 10% chance
        columns = history.as_dict()
        assert len(columns["epoch"]) == 8
        assert not model.training  # fit() leaves the model in eval mode

    def test_evaluate_returns_loss_and_accuracy(self):
        ds = synthetic_mnist(train_size=32, test_size=32, seed=2)
        model = build_model("lenet5", preset="tiny", rng=2)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        metrics = trainer.evaluate(DataLoader(ds.test, 16))
        assert set(metrics) == {"loss", "accuracy"}
        assert 0.0 <= metrics["accuracy"] <= 1.0
