"""Tests for the TRQ transfer function, coding scheme and distribution analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DistributionType,
    TRQParams,
    classify_regions,
    decode,
    encode,
    mean_ad_operations,
    quantization_mse,
    required_resolution,
    summarize_distribution,
    twin_range_quantize,
    uniform_reference_quantize,
)


# --------------------------------------------------------------------- #
# TRQParams derived quantities (Eq. 7-8, 11)
# --------------------------------------------------------------------- #
class TestTRQParams:
    def test_derived_properties(self):
        params = TRQParams(n_r1=3, n_r2=5, m=4, delta_r1=0.5, bias=2)
        assert params.delta_r2 == pytest.approx(0.5 * 16)  # Eq. 8
        assert params.r1_width == pytest.approx(8 * 0.5)
        assert params.r1_low == pytest.approx(2 * 4.0)
        assert params.r1_high == pytest.approx(12.0)
        assert params.r2_max == pytest.approx(31 * 8.0)
        assert params.detection_ops == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TRQParams(n_r1=0, n_r2=4, m=1)
        with pytest.raises(ValueError):
            TRQParams(n_r1=2, n_r2=4, m=-1)
        with pytest.raises(ValueError):
            TRQParams(n_r1=2, n_r2=4, m=1, delta_r1=0.0)
        with pytest.raises(ValueError):
            TRQParams(n_r1=2, n_r2=4, m=1, bias=-1)

    def test_ops_for_region(self):
        params = TRQParams(n_r1=2, n_r2=6, m=2)
        np.testing.assert_array_equal(
            params.ops_for_region(np.array([True, False])), [2, 6]
        )


# --------------------------------------------------------------------- #
# Transfer function
# --------------------------------------------------------------------- #
class TestTwinRangeQuantize:
    def test_dense_range_is_lossless_on_grid_points(self):
        """Eq. 11 ideal case: ΔR1 = 1 makes R1 conversions exact on integers."""
        params = TRQParams(n_r1=4, n_r2=4, m=4, delta_r1=1.0, bias=0)
        values = np.arange(0, 16, dtype=np.float64)  # all inside R1 = [0, 16)
        quantized, in_r1 = twin_range_quantize(values, params)
        np.testing.assert_array_equal(quantized, values)
        assert in_r1.all()

    def test_coarse_range_error_bounded_by_half_delta_r2(self):
        params = TRQParams(n_r1=3, n_r2=4, m=4, delta_r1=1.0)
        values = np.linspace(params.r1_high, params.r2_max, 100)
        quantized, in_r1 = twin_range_quantize(values, params)
        assert not in_r1.any()
        assert np.all(np.abs(quantized - values) <= params.delta_r2 / 2 + 1e-9)

    def test_region_boundaries(self):
        params = TRQParams(n_r1=2, n_r2=4, m=2, delta_r1=1.0, bias=1)
        # R1 = [4, 8): the lower edge is inside, the upper edge is not.
        mask = classify_regions(np.array([3.9, 4.0, 7.99, 8.0]), params)
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_values_above_r2_max_clip(self):
        params = TRQParams(n_r1=2, n_r2=3, m=2, delta_r1=1.0)
        quantized, _ = twin_range_quantize(np.array([1e6]), params)
        assert quantized[0] == pytest.approx(params.r2_max)

    def test_grid_alignment_with_full_precision_grid(self):
        """R2 reconstruction points land on the full-precision (ΔR1) grid."""
        params = TRQParams(n_r1=3, n_r2=4, m=3, delta_r1=1.0)
        values = np.random.default_rng(0).uniform(0, params.r2_max, 500)
        quantized, _ = twin_range_quantize(values, params)
        np.testing.assert_allclose(quantized / params.delta_r1,
                                   np.round(quantized / params.delta_r1), atol=1e-9)

    @given(
        n_r1=st.integers(1, 6), n_r2=st.integers(1, 7), m=st.integers(0, 6),
        bias=st.integers(0, 2), seed=st.integers(0, 999),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_idempotent_and_monotone(self, n_r1, n_r2, m, bias, seed):
        params = TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=1.0, bias=bias)
        rng = np.random.default_rng(seed)
        values = np.sort(rng.uniform(0, params.r2_max * 1.1, size=60))
        quantized, _ = twin_range_quantize(values, params)
        # Idempotence: re-quantizing reproduced values is a fixed point.
        again, _ = twin_range_quantize(quantized, params)
        np.testing.assert_allclose(again, quantized, atol=1e-9)
        # Error bound inside the representable range: ΔR2/2 in the coarse
        # range, and at most ΔR1 in the dense range (its topmost half-LSB
        # clamps to the last R1 code — that is what the hardware search does).
        inside = values <= params.r2_max
        bound = max(params.delta_r1, params.delta_r2 / 2)
        assert np.all(np.abs(quantized[inside] - values[inside]) <= bound + 1e-9)

    def test_mse_and_mean_ops_helpers(self, skewed_samples):
        params = TRQParams(n_r1=3, n_r2=5, m=3, delta_r1=1.0)
        mse = quantization_mse(skewed_samples, params)
        assert mse >= 0.0
        mean_ops = mean_ad_operations(skewed_samples, params)
        assert 1 + params.n_r1 <= mean_ops <= 1 + params.n_r2
        assert quantization_mse(np.array([]), params) == 0.0
        assert mean_ad_operations(np.array([]), params) == 1.0

    def test_uniform_reference_quantize(self):
        out = uniform_reference_quantize(np.array([0.4, 3.6, 100.0]), num_bits=2, delta=1.0)
        np.testing.assert_array_equal(out, [0.0, 3.0, 3.0])
        with pytest.raises(ValueError):
            uniform_reference_quantize(np.zeros(2), num_bits=0, delta=1.0)


# --------------------------------------------------------------------- #
# Coding scheme (Fig. 4b)
# --------------------------------------------------------------------- #
class TestCoding:
    @given(
        n_r1=st.integers(1, 5), n_r2=st.integers(1, 6), m=st.integers(0, 5),
        bias=st.integers(0, 2), seed=st.integers(0, 999),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_encode_decode_equals_transfer_function(self, n_r1, n_r2, m, bias, seed):
        """decode(encode(x)) must equal the TRQ reconstruction of x."""
        params = TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=1.0, bias=bias)
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, params.r2_max * 1.2, size=80)
        codes = encode(values, params)
        reconstructed = decode(codes, params)
        expected, _ = twin_range_quantize(values, params)
        np.testing.assert_allclose(reconstructed, expected, atol=1e-9)

    def test_code_width_is_one_plus_payload(self):
        params = TRQParams(n_r1=3, n_r2=5, m=2, delta_r1=1.0)
        values = np.random.default_rng(1).uniform(0, params.r2_max, 200)
        codes = encode(values, params)
        assert codes.max() < (1 << (1 + max(params.n_r1, params.n_r2)))
        assert codes.min() >= 0

    def test_msb_indicates_range(self):
        params = TRQParams(n_r1=2, n_r2=4, m=2, delta_r1=1.0)
        codes = encode(np.array([1.0, 100.0]), params)
        payload_bits = max(params.n_r1, params.n_r2)
        assert (codes[0] >> payload_bits) == 0  # R1
        assert (codes[1] >> payload_bits) == 1  # R2


# --------------------------------------------------------------------- #
# Distribution analysis (Section III-A / IV-B)
# --------------------------------------------------------------------- #
class TestDistributionAnalysis:
    def test_skewed_is_ideal(self, skewed_samples):
        summary = summarize_distribution(skewed_samples)
        assert summary.kind is DistributionType.IDEAL
        assert summary.mass_in_low_eighth > 0.5
        assert summary.skewness > 1.0

    def test_gaussian_is_normal(self, normal_samples):
        summary = summarize_distribution(normal_samples)
        assert summary.kind is DistributionType.NORMAL
        assert summary.num_modes == 1

    def test_bimodal_is_other(self, multimodal_samples):
        summary = summarize_distribution(multimodal_samples)
        assert summary.kind is DistributionType.OTHER
        assert summary.num_modes >= 2

    def test_flat_is_other(self, rng):
        flat = rng.uniform(0, 128, size=4000)
        assert summarize_distribution(flat).kind is DistributionType.OTHER

    def test_constant_sample(self):
        summary = summarize_distribution(np.full(100, 7.0))
        assert summary.value_range == 0.0
        assert summary.num_modes == 1

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            summarize_distribution(np.array([]))

    def test_required_resolution(self):
        assert required_resolution(np.array([0.0, 127.0])) == 7
        assert required_resolution(np.array([0.0, 128.0])) == 8
        assert required_resolution(np.array([0.0, 128.0]), v_grid=2.0) == 7
        assert required_resolution(np.array([5.0])) == 1
        with pytest.raises(ValueError):
            required_resolution(np.array([]))
        with pytest.raises(ValueError):
            required_resolution(np.array([1.0]), v_grid=0.0)
