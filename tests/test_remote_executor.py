"""Chaos tests of :class:`RemoteExecutor` and its pluggable transports.

Every scenario asserts the one invariant that matters: whatever the
transport does to the dispatched shards — drop them, SIGKILL them,
duplicate them, delay them — the sweep's aggregate record and the main
store's ``*.json`` listing end up byte-identical to an undisturbed
serial run.  The chaos transports live in ``tests/harness/chaos.py``.

Pinned here:

* The happy path dispatches one shard manifest per round-robin group per
  wave and matches serial byte-for-byte.
* A dropped shard (exits with no result file) is re-dispatched; only
  when ``max_dispatches`` attempts all vanish does the shard report
  failures — and a later healthy run heals the store completely.
* A worker SIGKILLed mid-shard is re-dispatched and the final store is
  untouched by its partial writes.
* Duplicate execution is harmless: an unsupervised shadow copy of every
  shard races the supervised one against the same worker store.
* A straggling shard gets a backup attempt (the shared
  ``exceeds_gates`` threshold), the first result wins, the loser is
  terminated.
* An injected job failure inside a worker is absorbed into the main
  store's failure log with the worker's real traceback, dependents are
  marked failed-with-cause, and a rerun heals everything.
"""

from __future__ import annotations

import json

import pytest

from harness.chaos import (
    CountingTransport,
    DelayingTransport,
    DroppingTransport,
    DuplicatingTransport,
    KillingTransport,
    tiny_flat_sweep,
    tiny_mc_sweep,
)
from repro.experiments import (
    FailureLog,
    RemoteExecutor,
    ResultStore,
    ShardJobFailed,
    job_key,
    resolve_executor,
    run_sweep,
)
from repro.experiments import runner as runner_module

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

# Fast-failure knobs for tests: no straggler backups unless a test asks.
CALM = dict(straggler_factor=100.0, straggler_min_gap_s=3600.0)


def record_json(run) -> str:
    return json.dumps(run.record.to_dict(), sort_keys=True)


def store_listing(store: ResultStore):
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.glob("*.json"))
    }


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


@pytest.fixture(scope="module")
def serial_mc(tmp_path_factory, weights_cache):
    """(record json, store listing) of an undisturbed serial MC run."""
    runner_module.clear_runner_memos()
    store = ResultStore(tmp_path_factory.mktemp("serial-mc"))
    run = run_sweep(tiny_mc_sweep(), store, weights_cache_dir=weights_cache)
    return record_json(run), store_listing(store)


@pytest.fixture(scope="module")
def serial_flat(tmp_path_factory, weights_cache):
    """(record json, store listing) of an undisturbed serial flat run."""
    runner_module.clear_runner_memos()
    store = ResultStore(tmp_path_factory.mktemp("serial-flat"))
    run = run_sweep(tiny_flat_sweep(), store, weights_cache_dir=weights_cache)
    return record_json(run), store_listing(store)


def remote_mc(store, weights_cache, transport, **executor_kwargs):
    executor = RemoteExecutor(
        workers=2, transport=transport, **{**CALM, **executor_kwargs},
    )
    return run_sweep(
        tiny_mc_sweep(), store, weights_cache_dir=weights_cache,
        executor=executor,
    )


# --------------------------------------------------------------------- #
# Happy path
# --------------------------------------------------------------------- #
class TestHappyPath:
    def test_remote_matches_serial_byte_for_byte(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        transport = CountingTransport()
        run = remote_mc(store, weights_cache, transport)
        assert (record_json(run), store_listing(store)) == serial_mc
        # Wave 1 (the shared clean reference) is one group; wave 2's two
        # Monte Carlo nodes round-robin into two groups of one.
        assert len(transport.submissions) == 3

    def test_resolve_executor_knows_remote(self):
        executor = resolve_executor("remote", workers=3)
        assert isinstance(executor, RemoteExecutor)
        assert executor.workers == 3
        with pytest.raises(ValueError):
            RemoteExecutor(workers=0)
        with pytest.raises(ValueError):
            RemoteExecutor(max_dispatches=0)


# --------------------------------------------------------------------- #
# Dropped and killed shards
# --------------------------------------------------------------------- #
class TestLostShards:
    def test_dropped_shard_is_redispatched(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        transport = DroppingTransport(drop=1)
        run = remote_mc(store, weights_cache, transport)
        assert (record_json(run), store_listing(store)) == serial_mc
        assert transport.dropped == 1
        assert len(transport.submissions) == 4  # 3 shards + 1 retry

    def test_killed_worker_is_redispatched(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        # Kill the first worker process 50ms in — during interpreter
        # startup, long before it can produce a result file.
        transport = KillingTransport(kill=1, delay_s=0.05)
        run = remote_mc(store, weights_cache, transport)
        assert (record_json(run), store_listing(store)) == serial_mc
        assert transport.killed == 1
        assert len(transport.submissions) == 4

    def test_exhausted_dispatches_report_failure_then_heal(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        transport = DroppingTransport(drop=10_000)  # the void: lose all
        with pytest.raises(ShardJobFailed):
            remote_mc(store, weights_cache, transport, max_dispatches=2)
        assert transport.dropped == 2  # both attempts of wave 1's shard
        clean_key = job_key(tiny_mc_sweep().expand()[0])
        failures = FailureLog(store)
        assert failures.has(clean_key)

        # A healthy rerun recomputes the lost shard and clears the log.
        run = remote_mc(store, weights_cache, CountingTransport())
        assert (record_json(run), store_listing(store)) == serial_mc
        assert len(failures) == 0


# --------------------------------------------------------------------- #
# Duplicate and straggling shards
# --------------------------------------------------------------------- #
class TestDuplicatesAndStragglers:
    def test_shadow_duplicates_of_every_shard_are_harmless(
        self, tmp_path, weights_cache, serial_flat,
    ):
        store = ResultStore(tmp_path / "store")
        transport = DuplicatingTransport()
        executor = RemoteExecutor(workers=2, transport=transport, **CALM)
        run = run_sweep(
            tiny_flat_sweep(), store, weights_cache_dir=weights_cache,
            executor=executor,
        )
        assert (record_json(run), store_listing(store)) == serial_flat
        assert len(transport.submissions) == 2  # one wave, two shards

    def test_straggler_gets_a_backup_and_the_backup_wins(
        self, tmp_path, weights_cache, serial_flat,
    ):
        store = ResultStore(tmp_path / "store")
        # The second shard sleeps far longer than the sweep; only the
        # backup attempt can finish it.
        transport = DelayingTransport(delay_submission=1, delay_s=300.0)
        executor = RemoteExecutor(
            workers=2, transport=transport,
            straggler_factor=1.5, straggler_min_gap_s=0.1,
            poll_interval_s=0.02,
        )
        run = run_sweep(
            tiny_flat_sweep(), store, weights_cache_dir=weights_cache,
            executor=executor,
        )
        assert (record_json(run), store_listing(store)) == serial_flat
        assert len(transport.submissions) == 3  # 2 shards + 1 backup

    def test_force_redispatch_duplicates_every_shard(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        transport = CountingTransport()
        run = remote_mc(store, weights_cache, transport, force_redispatch=True)
        assert (record_json(run), store_listing(store)) == serial_mc
        assert len(transport.submissions) == 6  # every shard twice


# --------------------------------------------------------------------- #
# Worker-side failures are absorbed with their real tracebacks
# --------------------------------------------------------------------- #
class TestFailureAbsorption:
    def test_injected_worker_failure_is_absorbed_then_healed(
        self, tmp_path, weights_cache, serial_mc,
    ):
        store = ResultStore(tmp_path / "store")
        executor = RemoteExecutor(workers=2, **CALM)
        run = run_sweep(
            tiny_mc_sweep(), store, weights_cache_dir=weights_cache,
            executor=executor, inject_failures=[0], max_failures=1,
        )
        # The clean reference failed inside the worker; its dependents
        # are failed-with-cause; the worker's traceback travelled home.
        failures = FailureLog(store)
        clean_key = job_key(tiny_mc_sweep().expand()[0])
        assert failures.has(clean_key)
        entry = failures.load(clean_key)
        assert "injected failure" in entry["error"]
        assert "injected failure" in entry["traceback"]
        dependents = [e for e in failures.load_all() if "cause_key" in e]
        assert {e["cause_key"] for e in dependents} == {clean_key}
        assert run.stats.failed == 3

        executor = RemoteExecutor(workers=2, **CALM)
        healed = run_sweep(
            tiny_mc_sweep(), store, weights_cache_dir=weights_cache,
            executor=executor,
        )
        assert (record_json(healed), store_listing(store)) == serial_mc
        assert len(failures) == 0
