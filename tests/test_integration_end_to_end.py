"""Integration tests reproducing the paper's headline claims on a small workload.

These are the tests that tie the whole stack together: trained model → PTQ →
crossbar/ADC simulation → distribution analysis → Algorithm 1 → evaluation.
They assert the *qualitative* results of the paper (who wins and roughly by
how much), not absolute numbers — see DESIGN.md for the substitution notes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CoDesignOptimizer,
    DistributionType,
    SearchSpaceConfig,
    settings_to_adc_configs,
    summarize_distribution,
    uniform_adc_configs,
)
from repro.workloads import prepare_workload


@pytest.fixture(scope="module")
def codesign_result(lenet_workload, lenet_eval_data):
    """Run the co-design pipeline once (fixed Nmax=4, no outer loop) and share it."""
    images, labels = lenet_eval_data
    optimizer = CoDesignOptimizer(
        lenet_workload.model,
        lenet_workload.calibration.images,
        lenet_workload.calibration.labels,
        search_space=SearchSpaceConfig(num_v_grid_candidates=12),
        max_samples_per_layer=6000,
        distribution_capacity=20_000,
        seed=0,
    )
    result = optimizer.run(images, labels, batch_size=16,
                           use_accuracy_loop=False, initial_n_max=4)
    return optimizer, result


class TestBitlineDistribution:
    def test_majority_of_layers_are_skewed_toward_zero(self, lenet_bitline_samples):
        """Paper Fig. 3a / Section III-A: BL outputs concentrate near zero."""
        low_mass = []
        pooled = []
        for samples in lenet_bitline_samples.values():
            maximum = samples.max()
            low_mass.append(np.mean(samples <= maximum / 4.0) if maximum > 0 else 1.0)
            pooled.append(samples)
        # In the large majority of layers, more than half the samples sit in
        # the bottom quarter of the observed range, and the pooled
        # distribution is strongly bottom-heavy.
        assert np.mean(np.array(low_mass) > 0.5) >= 0.6
        pooled_values = np.concatenate(pooled)
        assert np.median(pooled_values) <= pooled_values.max() / 4.0

    def test_distribution_classifier_finds_structure(self, lenet_bitline_samples):
        kinds = {
            name: summarize_distribution(samples).kind
            for name, samples in lenet_bitline_samples.items()
        }
        assert all(isinstance(kind, DistributionType) for kind in kinds.values())


class TestCoDesignHeadline:
    def test_accuracy_within_threshold_of_ideal(self, codesign_result):
        _, result = codesign_result
        # TRQ at a 4-bit budget stays close to the ideal-conversion accuracy.
        assert result.final_accuracy >= result.baseline_accuracy - 0.11

    def test_ad_operations_reduced_into_paper_range(self, codesign_result):
        _, result = codesign_result
        # Paper Fig. 6c: 42%-62% of operations remain (1.6-2.3x).  Allow a
        # wider band since the workload is a scaled-down synthetic one.
        assert 0.30 <= result.remaining_ops_fraction <= 0.80
        assert result.ops_reduction_factor > 1.2

    def test_trq_beats_uniform_quantization_at_equal_bit_budget(
        self, codesign_result, lenet_workload, lenet_eval_data, lenet_bitline_samples
    ):
        """The paper's central comparison (Fig. 6a vs 6b): at the same sensing
        bit budget, TRQ preserves more accuracy than uniform quantization."""
        optimizer, result = codesign_result
        images, labels = lenet_eval_data
        uniform = lenet_workload.simulator.evaluate(
            images, labels, uniform_adc_configs(lenet_bitline_samples, bits=3), batch_size=16
        )
        assert result.final_accuracy >= uniform.accuracy - 1e-9
        # And TRQ uses no more A/D operations than a 5-bit uniform ADC would.
        assert result.remaining_ops_fraction <= 5 / 8 + 1e-9

    def test_calibration_decisions_are_consistent(self, codesign_result):
        _, result = codesign_result
        for name, layer_result in result.calibration.layers.items():
            setting = layer_result.setting
            if setting.use_trq:
                assert setting.trq is not None
                assert max(setting.trq.n_r1, setting.trq.n_r2) <= 4
            else:
                assert setting.uniform_bits is not None and setting.uniform_bits <= 4
            assert layer_result.predicted_mean_ops <= 8.0
        configs = settings_to_adc_configs(result.calibration.settings, resolution=8)
        assert set(configs) == set(result.calibration.layers)

    def test_predicted_ops_match_measured_ops(self, codesign_result):
        """The calibration-time Eq. 9 estimate should track the simulator."""
        _, result = codesign_result
        predicted = result.calibration.predicted_remaining_fraction(8)
        measured = result.remaining_ops_fraction
        assert abs(predicted - measured) < 0.2


class TestAccuracyLoop:
    def test_outer_loop_respects_accuracy_threshold(self, lenet_workload, lenet_eval_data):
        """Run the full Algorithm 1 outer loop on a reduced search space."""
        images, labels = lenet_eval_data
        optimizer = CoDesignOptimizer(
            lenet_workload.model,
            lenet_workload.calibration.images,
            lenet_workload.calibration.labels,
            search_space=SearchSpaceConfig(num_v_grid_candidates=6),
            accuracy_threshold=0.05,
            min_n_max=3,
            max_samples_per_layer=4000,
            distribution_capacity=10_000,
        )
        result = optimizer.run(images[:32], labels[:32], batch_size=16,
                               use_accuracy_loop=True, initial_n_max=5)
        assert result.accuracy_drop <= 0.05 + 1e-9
        assert 3 <= result.calibration.n_max <= 5
        assert len(result.calibration.accuracy_history) >= 1


class TestWorkloadPreparation:
    def test_prepare_workload_cache_round_trip(self, tmp_path):
        first = prepare_workload(
            "lenet5", preset="tiny", train_size=64, test_size=32,
            calibration_images=8, epochs=2, seed=11, cache_dir=str(tmp_path),
        )
        second = prepare_workload(
            "lenet5", preset="tiny", train_size=64, test_size=32,
            calibration_images=8, epochs=2, seed=11, cache_dir=str(tmp_path),
        )
        for (_, a), (_, b) in zip(
            first.model.named_parameters(), second.model.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)
        assert first.float_accuracy == pytest.approx(second.float_accuracy)
        assert len(first.calibration) == 8
        assert first.eval_split(10).images.shape[0] == 10
        assert first.eval_split().images.shape[0] == 32
