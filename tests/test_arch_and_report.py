"""Tests for the architecture model (mapping, power, latency) and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    COMPONENTS,
    AcceleratorMapping,
    EnergyConstants,
    IsaacArchitecture,
    LatencyModel,
    PowerModel,
    breakdown_table,
    compare_configurations,
    trace_layer_geometry,
)
from repro.report import (
    ExperimentRecord,
    ascii_bar_chart,
    fig3a_distribution_record,
    fig6_accuracy_record,
    fig6c_ops_record,
    fig7_power_record,
    format_series,
    format_table,
    histogram_rows,
    summarize_records,
)


# --------------------------------------------------------------------- #
# architecture
# --------------------------------------------------------------------- #
class TestArchitecture:
    def test_isaac_derived_quantities(self):
        arch = IsaacArchitecture()
        assert arch.crossbar_pairs_per_tile == 64
        assert arch.adcs_per_tile == 64
        assert arch.baseline_adc_resolution == 8
        assert arch.tiles_needed(0) == 0
        assert arch.tiles_needed(65) == 2
        with pytest.raises(ValueError):
            arch.tiles_needed(-1)
        with pytest.raises(ValueError):
            IsaacArchitecture(pes_per_tile=0)

    def test_trace_layer_geometry(self, lenet_workload):
        geometries = trace_layer_geometry(lenet_workload.model, (1, 28, 28))
        assert set(geometries) == set(lenet_workload.simulator.layer_names())
        first_conv = geometries[lenet_workload.simulator.layer_names()[0]]
        assert first_conv.kind == "conv"
        assert first_conv.mvms_per_image == 28 * 28  # 5x5 conv, padding 2, stride 1
        last = geometries[lenet_workload.simulator.layer_names()[-1]]
        assert last.kind == "linear" and last.mvms_per_image == 1
        # Tracing restores training mode and leaves no hooks behind.
        assert not lenet_workload.model.training

    def test_accelerator_mapping_totals(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        summary = mapping.summary()
        assert summary["layers"] == len(lenet_workload.simulator.layer_names())
        assert summary["crossbar_pairs"] >= summary["layers"]
        assert summary["conversions_per_image"] > 0
        assert mapping.total_tiles >= 1
        workload = next(iter(mapping.layer_workloads.values()))
        assert workload.conversions_per_image == (
            workload.geometry.mvms_per_image * workload.conversions_per_mvm
        )

    def test_mapping_conversions_match_simulator(self, lenet_workload, lenet_eval_data):
        """Eq. 3 analytic counts equal the simulator's measured conversions."""
        images, labels = lenet_eval_data
        n = 4
        result = lenet_workload.simulator.evaluate(images[:n], labels[:n], None, batch_size=4)
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        assert result.total_conversions == n * mapping.total_conversions_per_image


class TestPowerModel:
    def test_baseline_breakdown_is_adc_dominated(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        breakdown = PowerModel().baseline_breakdown(mapping)
        assert set(breakdown.per_component) == set(COMPONENTS)
        assert breakdown.total > 0
        # The paper's motivation: ADC dominates the accelerator power (over
        # 60% on the full-size networks; the scaled-down test workload stays
        # the clear largest component and above half the total).
        fractions = breakdown.fractions()
        assert fractions["ADC"] > 0.5
        assert fractions["ADC"] == max(fractions.values())
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_trq_reduces_only_adc_component(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        model = PowerModel()
        baseline = model.baseline_breakdown(mapping)
        trq_ops = {name: 4.0 for name in mapping.layer_names}
        ours = model.breakdown(mapping, ops_per_conversion=trq_ops, label="Ours/4b")
        assert ours.per_component["ADC"] == pytest.approx(baseline.per_component["ADC"] / 2)
        for component in COMPONENTS:
            if component != "ADC":
                assert ours.per_component[component] == pytest.approx(
                    baseline.per_component[component]
                )

    def test_comparison_and_table(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        comparison = compare_configurations(
            "lenet5", mapping, {name: 4.5 for name in mapping.layer_names}, uniform_bits=7
        )
        assert comparison.labels == ["ISAAC", "Ours/4b", "UQ(7b)"]
        assert comparison.adc_reduction_vs_baseline("Ours/4b") == pytest.approx(8 / 4.5)
        assert comparison.total_reduction_vs_baseline("Ours/4b") > 1.0
        rows = breakdown_table([comparison])
        assert len(rows) == 3
        assert {row["config"] for row in rows} == {"ISAAC", "Ours/4b", "UQ(7b)"}
        with pytest.raises(KeyError):
            comparison.by_label("missing")

    def test_breakdown_helpers(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        breakdown = PowerModel().uniform_breakdown(mapping, bits=7)
        assert breakdown.label == "UQ(7b)"
        scaled = breakdown.scaled(2.0)
        assert scaled.total == pytest.approx(2 * breakdown.total)
        power = breakdown.as_power(1e-3)
        assert power["ADC"] == pytest.approx(breakdown.per_component["ADC"] / 1e-3)
        with pytest.raises(ValueError):
            breakdown.as_power(0.0)
        with pytest.raises(ValueError):
            PowerModel().uniform_breakdown(mapping, bits=0)
        with pytest.raises(ValueError):
            EnergyConstants(e_adc_op=-1.0)

    def test_latency_model(self, lenet_workload):
        mapping = AcceleratorMapping(lenet_workload.quantized, (1, 28, 28))
        model = LatencyModel()
        baseline = model.breakdown(mapping)
        faster = model.breakdown(mapping, default_ops_per_conversion=4.0)
        assert baseline.total > 0
        assert faster.total <= baseline.total


# --------------------------------------------------------------------- #
# reporting
# --------------------------------------------------------------------- #
class TestReport:
    def test_format_table_alignment_and_empty(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        table = format_table(rows)
        assert "a" in table.splitlines()[0]
        assert len(table.splitlines()) == 4
        assert format_table([]) == "(empty table)"

    def test_format_series_and_bar_chart(self):
        series = format_series("acc", ["8", "4"], [0.9, 0.7])
        assert "8=0.9" in series
        chart = ascii_bar_chart({"ADC": 10.0, "DAC": 5.0})
        assert chart.count("\n") == 1 and "#" in chart
        assert ascii_bar_chart({}) == "(no data)"

    def test_histogram_rows(self, skewed_samples):
        rows = histogram_rows(skewed_samples, num_bins=8)
        assert len(rows) == 8
        assert sum(r["count"] for r in rows) == skewed_samples.size
        assert histogram_rows(np.array([])) == []

    def test_experiment_record_round_trip(self, tmp_path):
        record = ExperimentRecord(
            experiment_id="fig6c",
            description="Remaining ops",
            paper_reference="42-62%",
        )
        record.add_row(workload="lenet5", remaining_fraction=0.55)
        record.metadata["preset"] = "tiny"
        path = record.save(tmp_path / "fig6c.json")
        loaded = ExperimentRecord.load(path)
        assert loaded.rows == record.rows
        assert loaded.metadata["preset"] == "tiny"
        table = record.to_table()
        assert "fig6c" in table and "remaining_fraction" in table
        index = summarize_records([record])
        assert "fig6c" in index

    def test_figure_builders(self, skewed_samples):
        fig3 = fig3a_distribution_record({"layer0": skewed_samples}, num_bins=8)
        assert fig3.rows[0]["frac_below_max_over_8"] > 0.5
        assert "layer0" in fig3.metadata["histograms"]

        fig6 = fig6_accuracy_record(
            "fig6a", "Accuracy vs resolution", "ref",
            {"lenet5": {"f/f": 0.9, "4": 0.6}},
        )
        assert len(fig6.rows) == 2

        fig6c = fig6c_ops_record({"lenet5": 0.5}, per_layer={"lenet5": {"conv1": 0.4}})
        assert fig6c.rows[0]["reduction_factor"] == pytest.approx(2.0)

        fig7 = fig7_power_record([{"workload": "lenet5", "config": "ISAAC", "ADC": 1.0}])
        assert fig7.rows[0]["config"] == "ISAAC"
