"""Fast-engine equivalence and sampler bugfix regression tests.

The fused cycle/segment kernel with integer-domain LUT conversion
(``engine="fast"``) must be *bit-identical* to the per-(cycle, segment)
reference loop — same merged outputs (``np.array_equal``), same A/D-operation
totals, same conversion/region statistics — for every converter type.  These
tests pin that contract at the mapped-layer level and end-to-end through
:class:`repro.sim.PimSimulator`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import NonUniformAdc, TwinRangeAdc, UniformAdc, twin_range_config, uniform_config
from repro.core import TRQParams
from repro.crossbar import CrossbarTopology, MappedMVMLayer
from repro.quantization import QuantizationConfig
from repro.sim import DistributionCollector, PimSimulator, ReservoirSampler
from repro.sim.pim_layer import PimBackend


def _assert_engines_agree(layer, inputs, make_adc):
    ref_adc, fast_adc = make_adc(), make_adc()
    ref, ref_ops = layer.matmul(inputs, adc=ref_adc, engine="reference")
    fast, fast_ops = layer.matmul(inputs, adc=fast_adc, engine="fast")
    np.testing.assert_array_equal(ref, fast)
    assert ref_ops == fast_ops
    if ref_adc is not None:
        assert ref_adc.stats == fast_adc.stats
    return ref


class TestEngineEquivalence:
    def test_ideal_conversion_bit_identical(self, rng):
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(300, 9)))
        inputs = rng.integers(0, 256, size=(17, 300))
        _assert_engines_agree(layer, inputs, lambda: None)

    def test_uniform_adc_bit_identical(self, rng):
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(140, 7)))
        inputs = rng.integers(0, 256, size=(11, 140))
        _assert_engines_agree(layer, inputs, lambda: UniformAdc(bits=5, delta=3.7))

    def test_twin_range_adc_bit_identical(self, rng):
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(200, 5)))
        inputs = rng.integers(0, 256, size=(13, 200))
        params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=0.9, bias=3)
        _assert_engines_agree(layer, inputs, lambda: TwinRangeAdc(params))

    def test_nonuniform_adc_bit_identical(self, rng):
        """Converters without an integer level grid use the element-wise
        fallback inside the fused kernel and must still match exactly."""
        layer = MappedMVMLayer(rng.integers(-7, 8, size=(30, 4)),
                               QuantizationConfig(weight_bits=4, activation_bits=4))
        inputs = rng.integers(0, 16, size=(9, 30))
        grid = np.unique(rng.uniform(0.0, layer.max_bitline_value + 1.0, size=13))
        _assert_engines_agree(layer, inputs, lambda: NonUniformAdc(grid))

    @pytest.mark.parametrize("crossbar_size,bits_per_cell,dac_bits", [
        (16, 1, 1), (64, 2, 1), (128, 1, 2), (32, 2, 2),
    ])
    def test_bit_identical_across_topologies(self, rng, crossbar_size, bits_per_cell, dac_bits):
        topology = CrossbarTopology(crossbar_size, bits_per_cell, dac_bits)
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(90, 6)),
                               QuantizationConfig(), topology)
        inputs = rng.integers(0, 256, size=(7, 90))
        params = TRQParams(n_r1=3, n_r2=6, m=2, delta_r1=1.0, bias=1)
        _assert_engines_agree(layer, inputs, lambda: TwinRangeAdc(params))
        _assert_engines_agree(layer, inputs, lambda: None)

    def test_fast_engine_is_chunk_invariant(self, rng):
        """Reused scratch buffers must not leak state between calls."""
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(150, 8)))
        adc = TwinRangeAdc(TRQParams(n_r1=2, n_r2=5, m=3))
        big = rng.integers(0, 256, size=(64, 150))
        whole, _ = layer.matmul(big, adc=adc, engine="fast")
        parts = [layer.matmul(big[i : i + 16], adc=adc, engine="fast")[0] for i in range(0, 64, 16)]
        np.testing.assert_array_equal(whole, np.concatenate(parts, axis=0))

    def test_observer_sees_same_values_in_both_engines(self, rng):
        """Block order differs (cycle-major vs segment-major) but the multiset
        of observed bit-line values must be identical."""
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(150, 4)))
        inputs = rng.integers(0, 256, size=(5, 150))
        seen = {"reference": [], "fast": []}
        for engine in seen:
            layer.matmul(
                inputs,
                partial_observer=lambda block, e=engine: seen[e].append(
                    np.asarray(block, dtype=np.float64).ravel().copy()
                ),
                engine=engine,
            )
        ref = np.sort(np.concatenate(seen["reference"]))
        fast = np.sort(np.concatenate(seen["fast"]))
        np.testing.assert_array_equal(ref, fast)

    def test_unknown_engine_rejected(self, rng):
        layer = MappedMVMLayer(rng.integers(-3, 4, size=(4, 2)),
                               QuantizationConfig(weight_bits=3, activation_bits=2))
        with pytest.raises(ValueError):
            layer.matmul(np.zeros((1, 4), dtype=int), engine="warp")

    def test_fast_engine_rejects_out_of_range_inputs(self, rng):
        layer = MappedMVMLayer(rng.integers(-3, 4, size=(4, 2)),
                               QuantizationConfig(weight_bits=3, activation_bits=2))
        with pytest.raises(ValueError):
            layer.matmul(np.array([[-1, 0, 0, 0]]), engine="fast")
        with pytest.raises(ValueError):
            layer.matmul(np.array([[0, 0, 0, 99]]), engine="fast")


class TestSimulatorEngineEquivalence:
    def test_end_to_end_bit_identical(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        images, labels = images[:8], labels[:8]
        names = lenet_workload.simulator.layer_names()
        configs = {
            name: twin_range_config(TRQParams(n_r1=2, n_r2=5, m=3))
            if index % 2 == 0
            else uniform_config(resolution=8, bits=4)
            for index, name in enumerate(names)
        }
        results = {}
        for engine in ("reference", "fast"):
            sim = PimSimulator(lenet_workload.quantized, engine=engine)
            results[engine] = sim.evaluate(images, labels, configs, batch_size=4)
        ref, fast = results["reference"], results["fast"]
        np.testing.assert_array_equal(ref.logits, fast.logits)
        assert set(ref.layer_stats) == set(fast.layer_stats)
        for name in ref.layer_stats:
            a, b = ref.layer_stats[name], fast.layer_stats[name]
            assert (a.conversions, a.operations, a.in_r1, a.in_r2) == (
                b.conversions, b.operations, b.in_r1, b.in_r2
            ), name

    def test_backend_rejects_unknown_engine(self, lenet_workload):
        with pytest.raises(ValueError):
            PimBackend(lenet_workload.quantized, engine="turbo")

    def test_default_engine_is_fast(self, lenet_workload):
        assert PimBackend(lenet_workload.quantized).engine == "fast"
        assert PimSimulator(lenet_workload.quantized).engine == "fast"


class TestAdcLut:
    def test_convert_codes_matches_convert_bitwise(self, rng):
        params = TRQParams(n_r1=3, n_r2=5, m=2, delta_r1=0.7, bias=1)
        values = rng.integers(0, 129, size=(64, 33))
        a, b = TwinRangeAdc(params), TwinRangeAdc(params)
        ref, ref_ops = a.convert(values.astype(np.float64))
        lut_q, lut_ops = b.convert_codes(values, 128)
        np.testing.assert_array_equal(ref, lut_q)
        assert ref_ops == lut_ops
        assert a.stats == b.stats

    def test_uniform_convert_codes_matches_convert(self, rng):
        adc_a, adc_b = UniformAdc(bits=4, delta=2.3), UniformAdc(bits=4, delta=2.3)
        values = rng.integers(0, 129, size=200)
        ref, _ = adc_a.convert(values.astype(np.float64))
        lut_q, _ = adc_b.convert_codes(values, 128)
        np.testing.assert_array_equal(ref, lut_q)

    def test_levels_times_scale_reconstruct_quantized(self):
        """The integer-level invariant: scale · level reconstructs the
        quantized value (to within 1 ulp of the element-wise float path)."""
        params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.5, bias=0)
        adc = TwinRangeAdc(params)
        lut = adc.transfer_lut(128)
        np.testing.assert_allclose(
            lut.levels.astype(np.float64) * lut.scale, lut.values, rtol=0, atol=1e-12
        )
        assert lut.levels.dtype == np.uint8  # compact storage for the merge

    def test_lut_bound_violation_raises(self):
        adc = UniformAdc(bits=4, delta=1.0)
        with pytest.raises(ValueError):
            adc.convert_codes(np.array([200]), 128)
        with pytest.raises(ValueError):
            adc.transfer_lut(-1)


# --------------------------------------------------------------------- #
# satellite bugfixes (reservoir capacity + per-layer seeds)
# --------------------------------------------------------------------- #
class TestReservoirCapacityRegression:
    def test_one_huge_block_cannot_exceed_capacity(self):
        """Regression: a block much larger than ``total_seen`` used to be
        accepted almost wholesale and appended after eviction without
        clamping, overshooting the documented capacity bound."""
        for seed in range(20):
            sampler = ReservoirSampler(capacity=100, seed=seed)
            sampler.add(np.arange(10.0))          # small history ...
            sampler.add(np.arange(50_000.0))      # ... then one huge block
            assert len(sampler) <= 100, f"seed {seed}: {len(sampler)} > 100"
            assert sampler.values.size == len(sampler)

    def test_capacity_bound_holds_under_any_block_sequence(self, rng):
        sampler = ReservoirSampler(capacity=64, seed=1)
        for _ in range(50):
            sampler.add(rng.normal(size=int(rng.integers(1, 5000))))
            assert len(sampler) <= 64
        assert sampler.total_seen > 64

    def test_huge_first_block_is_uniformly_clamped(self):
        sampler = ReservoirSampler(capacity=100, seed=0)
        sampler.add(np.arange(100_000.0))
        # Acceptance is stochastic at rate capacity/total_seen, so the fill is
        # approximate — but the capacity bound is hard.
        assert 50 <= len(sampler) <= 100
        # A uniform subsample of [0, 100000) should span the range broadly.
        assert sampler.values.max() > 50_000


class TestCollectorSeedIndependence:
    def test_layers_draw_independent_acceptance_streams(self):
        """Regression: every layer used to receive the *same* seed, so all
        reservoirs accepted identical index streams (correlated subsampling)."""
        collector = DistributionCollector(capacity_per_layer=200, seed=123)
        data = np.arange(20_000.0)
        for layer in ("a", "b"):
            collector.set_layer(layer)
            collector(data)
            collector(data)
        kept_a = set(collector.samples("a").tolist())
        kept_b = set(collector.samples("b").tolist())
        assert kept_a != kept_b  # identical streams would retain identical sets

    def test_collection_is_reproducible_for_fixed_seed(self):
        def collect():
            collector = DistributionCollector(capacity_per_layer=100, seed=7)
            collector.set_layer("x")
            collector(np.arange(5_000.0))
            return collector.samples("x")

        np.testing.assert_array_equal(collect(), collect())
