"""Tests for the SAR ADC substrate: uniform, non-uniform and twin-range models.

The central property, checked exhaustively and with hypothesis, is that the
vectorised converters used by the simulator agree step-for-step with the
cycle-accurate SAR searches that define the hardware behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import (
    AdcConfig,
    AdcEnergyParams,
    AdcMode,
    ConversionStats,
    NonUniformAdc,
    SarAdc,
    TwinRangeAdc,
    TwinRangeSarAdc,
    UniformAdc,
    build_adc,
    build_cycle_accurate_adc,
    conversions_per_mvm,
    ideal_adc_for_resolution,
    ideal_adc_resolution,
    twin_range_config,
    uniform_config,
)
from repro.core.trq import TRQParams


# --------------------------------------------------------------------- #
# configuration registers
# --------------------------------------------------------------------- #
class TestAdcConfig:
    def test_uniform_defaults(self):
        config = uniform_config(resolution=8)
        assert config.effective_uniform_bits == 8
        assert config.full_scale == pytest.approx(255.0)
        narrower = uniform_config(resolution=8, bits=5, v_grid=0.5)
        assert narrower.effective_uniform_bits == 5

    def test_uniform_bits_cannot_exceed_resolution(self):
        with pytest.raises(ValueError):
            uniform_config(resolution=8, bits=9)

    def test_twin_range_validation(self):
        params = TRQParams(n_r1=2, n_r2=4, m=3)
        config = twin_range_config(params, resolution=8)
        assert config.mode is AdcMode.TWIN_RANGE
        with pytest.raises(ValueError):
            AdcConfig(resolution=8, mode=AdcMode.TWIN_RANGE, trq=None)
        with pytest.raises(ValueError):
            twin_range_config(TRQParams(n_r1=2, n_r2=9, m=0), resolution=8)
        with pytest.raises(ValueError):
            twin_range_config(TRQParams(n_r1=2, n_r2=4, m=5), resolution=8)

    def test_with_v_grid_copy(self):
        config = uniform_config(resolution=8, v_grid=1.0)
        copy = config.with_v_grid(2.0)
        assert copy.v_grid == 2.0 and config.v_grid == 1.0


# --------------------------------------------------------------------- #
# cycle-accurate vs vectorised: uniform
# --------------------------------------------------------------------- #
class TestUniformAdc:
    def test_full_resolution_is_lossless_on_integers(self):
        adc = UniformAdc(bits=8, delta=1.0)
        values = np.arange(0, 129, dtype=np.float64)
        quantized, ops = adc.convert(values)
        np.testing.assert_array_equal(quantized, values)
        assert ops == values.size * 8
        assert adc.stats.mean_ops_per_conversion == 8.0

    def test_reduced_precision_enlarges_step(self):
        config = uniform_config(resolution=8, bits=4, v_grid=1.0)
        adc = UniformAdc.from_config(config)
        assert adc.delta == 16.0
        quantized, _ = adc.convert(np.array([3.0, 120.0]))
        assert quantized[0] == 0.0
        assert quantized[1] % 16 == 0

    def test_from_config_rejects_trq_mode(self):
        config = twin_range_config(TRQParams(2, 4, 3), resolution=8)
        with pytest.raises(ValueError):
            UniformAdc.from_config(config)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformAdc(bits=0, delta=1.0)
        with pytest.raises(ValueError):
            UniformAdc(bits=4, delta=0.0)

    @given(
        bits=st.integers(min_value=1, max_value=9),
        delta=st.floats(min_value=0.05, max_value=8.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_vectorised_matches_cycle_accurate(self, bits, delta, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-delta, (1 << bits) * delta * 1.1, size=64)
        vectorised = UniformAdc(bits, delta)
        cycle = SarAdc(bits, delta)
        quantized, total_ops = vectorised.convert(values)
        traces = [cycle.convert(v) for v in values]
        np.testing.assert_allclose(quantized, [t.output_value for t in traces], atol=1e-9)
        assert total_ops == sum(t.operations for t in traces)

    def test_cycle_accurate_trace_contents(self):
        trace = SarAdc(bits=3, delta=1.0).convert(5.2)
        assert trace.output_code == 5
        assert len(trace.thresholds) == 3 and len(trace.decisions) == 3
        assert trace.operations == 3

    def test_ideal_adc_builder(self):
        adc = ideal_adc_for_resolution(8)
        assert adc.bits == 8 and adc.delta == 1.0


# --------------------------------------------------------------------- #
# cycle-accurate vs vectorised: twin range
# --------------------------------------------------------------------- #
class TestTwinRangeAdc:
    @pytest.mark.parametrize("params", [
        TRQParams(n_r1=3, n_r2=4, m=3, delta_r1=1.0, bias=0),
        TRQParams(n_r1=2, n_r2=5, m=2, delta_r1=0.5, bias=1),
        TRQParams(n_r1=4, n_r2=4, m=4, delta_r1=1.0, bias=2),
        TRQParams(n_r1=1, n_r2=6, m=1, delta_r1=2.0, bias=0),
    ])
    def test_matches_cycle_accurate(self, params, rng):
        vectorised = TwinRangeAdc(params)
        cycle = TwinRangeSarAdc(params)
        values = rng.uniform(0, params.r2_max * 1.1, size=200)
        quantized, total_ops = vectorised.convert(values)
        traces = [cycle.convert(v) for v in values]
        np.testing.assert_allclose(quantized, [t.output_value for t in traces], atol=1e-9)
        assert total_ops == sum(t.operations for t in traces)
        assert vectorised.stats.in_r1 == sum(t.in_r1 for t in traces)

    @given(
        n_r1=st.integers(min_value=1, max_value=6),
        n_r2=st.integers(min_value=1, max_value=7),
        m=st.integers(min_value=0, max_value=5),
        bias=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_cycle_accurate(self, n_r1, n_r2, m, bias, seed):
        params = TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=1.0, bias=bias)
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, max(params.r2_max, params.r1_high) * 1.2, size=50)
        quantized, ops = TwinRangeAdc(params).convert(values)
        cycle = TwinRangeSarAdc(params)
        traces = [cycle.convert(v) for v in values]
        np.testing.assert_allclose(quantized, [t.output_value for t in traces], atol=1e-9)
        assert ops == sum(t.operations for t in traces)

    def test_ops_accounting_follows_eq9(self):
        params = TRQParams(n_r1=2, n_r2=6, m=2, delta_r1=1.0, bias=0)
        adc = TwinRangeAdc(params)
        values = np.array([0.0, 1.0, 3.0, 100.0])  # three in R1 ([0,4)), one in R2
        _, ops = adc.convert(values)
        assert ops == 4 * 1 + 3 * 2 + 1 * 6
        assert adc.stats.in_r1 == 3 and adc.stats.in_r2 == 1
        assert adc.stats.r1_fraction == pytest.approx(0.75)
        assert adc.stats.remaining_fraction(8) == pytest.approx(ops / (4 * 8))

    def test_detection_cost_doubles_with_bias(self):
        no_bias = TRQParams(n_r1=2, n_r2=4, m=2, bias=0)
        with_bias = TRQParams(n_r1=2, n_r2=4, m=2, bias=1)
        assert no_bias.detection_ops == 1 and with_bias.detection_ops == 2

    def test_region_mask_and_reset(self):
        params = TRQParams(n_r1=2, n_r2=4, m=2, delta_r1=1.0)
        adc = TwinRangeAdc(params)
        mask = adc.region_mask(np.array([0.0, 3.9, 4.0, 50.0]))
        np.testing.assert_array_equal(mask, [True, True, False, False])
        adc.convert(np.zeros(5))
        adc.reset_stats()
        assert adc.stats.conversions == 0

    def test_build_adc_dispatch(self):
        assert isinstance(build_adc(uniform_config()), UniformAdc)
        assert isinstance(build_adc(twin_range_config(TRQParams(2, 4, 3))), TwinRangeAdc)
        assert isinstance(build_cycle_accurate_adc(uniform_config()), SarAdc)
        assert isinstance(
            build_cycle_accurate_adc(twin_range_config(TRQParams(2, 4, 3))), TwinRangeSarAdc
        )
        with pytest.raises(ValueError):
            TwinRangeAdc.from_config(uniform_config())


# --------------------------------------------------------------------- #
# non-uniform baseline
# --------------------------------------------------------------------- #
class TestNonUniformAdc:
    def test_grid_from_samples_concentrates_levels(self, skewed_samples):
        adc = NonUniformAdc.from_samples(skewed_samples, num_levels=16)
        # More than half the levels sit in the dense low quarter of the range,
        # even though it holds only ~1/4 of the value span.
        assert np.mean(adc.grid <= 0.25 * skewed_samples.max()) > 0.5
        # Quantile mode is also available and concentrates even harder.
        quantile = NonUniformAdc.from_samples(skewed_samples, num_levels=16, method="quantile")
        assert np.median(quantile.grid) <= np.median(adc.grid) + 1e-9
        with pytest.raises(ValueError):
            NonUniformAdc.from_samples(skewed_samples, 16, method="kmeans")

    def test_convert_picks_nearest_level(self):
        adc = NonUniformAdc(np.array([0.0, 1.0, 10.0]))
        quantized, ops = adc.convert(np.array([0.4, 0.6, 7.0]))
        np.testing.assert_array_equal(quantized, [0.0, 1.0, 10.0])
        assert ops == 3 * adc.bits

    def test_validation(self):
        with pytest.raises(ValueError):
            NonUniformAdc(np.array([1.0]))
        with pytest.raises(ValueError):
            NonUniformAdc(np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            NonUniformAdc.from_samples(np.array([]), 4)
        with pytest.raises(ValueError):
            NonUniformAdc.from_samples(np.ones(10), 1)
        # Degenerate constant samples still produce a usable grid.
        adc = NonUniformAdc.from_samples(np.zeros(10), 4)
        assert adc.grid.size >= 2

    def test_lower_mse_than_uniform_on_skewed_data(self):
        """The motivation for non-uniform grids: better MSE at equal levels.

        Uses a continuous, strongly skewed sample — the regime the paper's
        Fig. 2b non-uniform grid targets.
        """
        rng = np.random.default_rng(0)
        samples = rng.exponential(scale=2.0, size=8000)
        levels = 16
        nu = NonUniformAdc.from_samples(samples, num_levels=levels)
        nu_q, _ = nu.convert(samples)
        delta = samples.max() / (levels - 1)
        uniform = UniformAdc(bits=4, delta=delta)
        u_q, _ = uniform.convert(samples)
        assert np.mean((nu_q - samples) ** 2) <= np.mean((u_q - samples) ** 2)


# --------------------------------------------------------------------- #
# energy model and counters
# --------------------------------------------------------------------- #
class TestEnergyAndCounters:
    def test_ideal_resolution_eq2(self):
        assert ideal_adc_resolution(128, 1, 1) == 8
        assert ideal_adc_resolution(128, 2, 2) == 11
        assert ideal_adc_resolution(256, 1, 1) == 9
        with pytest.raises(ValueError):
            ideal_adc_resolution(1)

    def test_conversions_per_mvm_eq3(self):
        count = conversions_per_mvm(128, 300, 17, weight_bits=8, activation_bits=8)
        assert count == 8 * 7 * 3 * 2 * 17
        non_diff = conversions_per_mvm(128, 100, 4, differential=False)
        assert non_diff == 8 * 8 * 1 * 1 * 4

    def test_energy_params(self):
        params = AdcEnergyParams(energy_per_operation=1e-12)
        assert params.conversion_energy(8) == pytest.approx(8e-12)
        with pytest.raises(ValueError):
            params.conversion_energy(-1)
        stats = ConversionStats()
        stats.record(conversions=10, operations=55)
        assert params.energy_from_stats(stats) == pytest.approx(55e-12)
        total = params.total_inference_energy(100, 50, 4.0)
        assert total == pytest.approx(100 * 50 * 4.0 * 1e-12)
        with pytest.raises(ValueError):
            AdcEnergyParams(energy_per_operation=0.0)

    def test_counter_merge_and_reset(self):
        a = ConversionStats()
        a.record(conversions=4, operations=20, in_r1=3, in_r2=1)
        b = ConversionStats()
        b.record(conversions=6, operations=18, detection_operations=6)
        a.merge(b)
        assert a.conversions == 10 and a.operations == 38
        assert a.mean_ops_per_conversion == pytest.approx(3.8)
        a.reset()
        assert a.conversions == 0 and a.r1_fraction == 0.0
        assert a.remaining_fraction(8) == 0.0
