"""Tests of the experiment orchestration subsystem (:mod:`repro.experiments`).

Covers the PR's contracts: content addressing (identical spec → cache hit,
any changed field → new hash, preset edits invalidate), crash-resume
bit-identity, parallel-vs-serial byte-identity (derived-seed determinism
across process boundaries), the shared clean reference, and the
once-per-process deprecation warning dedup that keeps parallel sweeps'
logs readable.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.experiments import (
    AdcSpec,
    CalibrationParams,
    DistributionParams,
    ExperimentSpec,
    FailureLog,
    JobSpec,
    MaxFailuresExceeded,
    NoiseScenario,
    PowerSpec,
    ResultStore,
    SweepSpec,
    WorkloadSpec,
    execute_job,
    job_key,
    run_sweep,
)
from repro.experiments import runner as runner_module
from repro.experiments.presets import available_presets, build_preset
from repro.experiments.store import code_version_salt
from repro.utils.warnings import reset_warn_once_registry, warn_once
from repro.workloads import _cache_path, workload_fingerprint

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# --------------------------------------------------------------------- #
# Fixtures: a deliberately tiny workload so jobs run in fractions of a
# second; the trained weights are disk-cached once per test session.
# --------------------------------------------------------------------- #
TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)


def tiny_sweep(name: str = "tiny-sweep") -> SweepSpec:
    return SweepSpec(
        name=name,
        kind="monte_carlo",
        workloads=[TINY],
        noises=[
            NoiseScenario(label={"sigma": 0.0}),
            NoiseScenario(
                models=[{"model": "gaussian_read_noise", "sigma": 0.5}],
                label={"sigma": 0.5},
            ),
        ],
        mc_seeds=[0, 1],
        trials=2,
        images=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    """Each test starts without in-process memos (like a fresh worker)."""
    runner_module.clear_runner_memos()
    yield


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory, weights_cache):
    """One uninterrupted serial run, shared by the equivalence tests."""
    runner_module.clear_runner_memos()
    root = tmp_path_factory.mktemp("store-reference")
    run = run_sweep(tiny_sweep(), ResultStore(root), weights_cache_dir=weights_cache)
    run._store_root = str(root)  # let the tests reopen the same store
    return run


def record_bytes(run) -> bytes:
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


# --------------------------------------------------------------------- #
# Content addressing
# --------------------------------------------------------------------- #
class TestJobKeys:
    def test_identical_specs_share_a_key(self):
        jobs_a = tiny_sweep().expand()
        jobs_b = tiny_sweep().expand()
        assert [job_key(a) for a in jobs_a] == [job_key(b) for b in jobs_b]

    def test_every_changed_field_changes_the_hash(self):
        base = tiny_sweep().expand()[-1]  # a monte_carlo job
        assert base.kind == "monte_carlo"
        variants = [
            dataclasses.replace(base, trials=base.trials + 1),
            dataclasses.replace(base, images=base.images + 1),
            dataclasses.replace(base, batch_size=base.batch_size + 1),
            dataclasses.replace(base, mc_seed=base.mc_seed + 1),
            dataclasses.replace(base, engine="reference"),
            dataclasses.replace(base, confidence=0.9),
            dataclasses.replace(base, adc=AdcSpec(n_r1=3)),
            dataclasses.replace(base, adc=AdcSpec(mode="uniform", uniform_bits=6)),
            dataclasses.replace(
                base, workload=dataclasses.replace(base.workload, seed=12)
            ),
            dataclasses.replace(
                base, workload=dataclasses.replace(base.workload, train_size=64)
            ),
            dataclasses.replace(
                base, workload=dataclasses.replace(base.workload, epochs=3)
            ),
            dataclasses.replace(
                base,
                noise=NoiseScenario(
                    models=[{"model": "gaussian_read_noise", "sigma": 0.25}],
                    label={"sigma": 0.25},
                ),
            ),
            dataclasses.replace(base, noise=dataclasses.replace(base.noise, seed=5)),
        ]
        keys = [job_key(base)] + [job_key(v) for v in variants]
        assert len(set(keys)) == len(keys), "a changed field did not change the hash"

    def test_relabeling_does_not_rehash(self):
        """Labels are reporting metadata: renaming a grid coordinate must
        serve the cached artifact, not re-run the job."""
        base = tiny_sweep().expand()[-1]
        relabeled = dataclasses.replace(base, label={"renamed": True})
        assert job_key(relabeled) == job_key(base)
        # ... including the labels carried by the noise scenario itself.
        scenario_relabel = dataclasses.replace(
            base, noise=dataclasses.replace(base.noise, label={"read_noise": 0.5})
        )
        assert job_key(scenario_relabel) == job_key(base)

    def test_unused_fields_do_not_rehash(self):
        """Fields a job kind never consumes stay out of its address."""
        cal = build_preset("ablation-calibration", smoke=True).sweep.expand()[0]
        assert cal.kind == "calibration"
        assert job_key(dataclasses.replace(cal, adc=AdcSpec(bias=1))) == job_key(cal)
        assert job_key(dataclasses.replace(cal, engine="reference")) == job_key(cal)
        # A uniform-mode ADC spec ignores its (inactive) TRQ fields.
        base = tiny_sweep().expand()[0]
        uniform = dataclasses.replace(
            base, adc=AdcSpec(mode="uniform", uniform_bits=6)
        )
        uniform_trq_edit = dataclasses.replace(
            base, adc=AdcSpec(mode="uniform", uniform_bits=6, n_r1=3)
        )
        assert job_key(uniform) == job_key(uniform_trq_edit)

    def test_salt_changes_the_hash(self):
        job = tiny_sweep().expand()[0]
        assert job_key(job) == job_key(job, code_version_salt())
        assert job_key(job) != job_key(job, "other-salt")

    def test_preset_edit_invalidates_weight_cache_and_job_keys(self, monkeypatch, tmp_path):
        from repro.nn.models import registry

        job = tiny_sweep().expand()[0]
        fingerprint_before = workload_fingerprint("lenet5", "tiny", 48, 2, 11)
        key_before = job_key(job)
        path_before = _cache_path(tmp_path, "lenet5", "tiny", 48, 2, 11)

        edited = dict(registry._PRESETS)
        edited["tiny"] = dict(edited["tiny"], width=0.5)
        monkeypatch.setattr(registry, "_PRESETS", edited)

        assert workload_fingerprint("lenet5", "tiny", 48, 2, 11) != fingerprint_before
        assert job_key(job) != key_before, "preset edit must re-address results"
        assert _cache_path(tmp_path, "lenet5", "tiny", 48, 2, 11) != path_before, (
            "preset edit must never serve stale trained weights"
        )

    def test_monte_carlo_siblings_share_one_clean_job(self):
        jobs = [j for j in tiny_sweep().expand() if j.kind == "monte_carlo"]
        clean_keys = {job_key(j.clean_job()) for j in jobs}
        assert len(clean_keys) == 1  # same workload/ADC/images → one reference


# --------------------------------------------------------------------- #
# Result store
# --------------------------------------------------------------------- #
class TestResultStore:
    def test_json_and_array_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        arrays = {"logits": np.linspace(-1, 1, 12).reshape(4, 3)}
        store.save("abc123", {"row": {"x": 1.5}}, arrays)
        assert store.has("abc123")
        assert store.load("abc123") == {"row": {"x": 1.5}}
        restored = store.load_arrays("abc123")
        np.testing.assert_array_equal(restored["logits"], arrays["logits"])
        assert list(store.keys()) == ["abc123"]
        store.delete("abc123")
        assert not store.has("abc123")
        assert store.load_arrays("abc123") == {}

    def test_no_partial_artifacts_on_writer_failure(self, tmp_path):
        store = ResultStore(tmp_path / "store")

        def exploding_writer(handle):
            handle.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError, match="disk on fire"):
            store._atomic_write(store.json_path("k"), exploding_writer)
        assert not store.has("k")
        assert list(tmp_path.joinpath("store").iterdir()) == []


# --------------------------------------------------------------------- #
# Runner: caching, resume, parallel determinism
# --------------------------------------------------------------------- #
class TestRunner:
    def test_identical_sweep_is_a_full_cache_hit(
        self, reference_run, weights_cache, monkeypatch
    ):
        # Re-run against the same store; any compute attempt must blow up.
        for fn in ("_execute_evaluate", "_execute_monte_carlo", "_execute_calibration"):
            monkeypatch.setattr(
                runner_module, fn,
                lambda *a, **k: pytest.fail("cache hit must not recompute"),
            )
        rerun = run_sweep(
            tiny_sweep(), ResultStore(reference_run_store_root(reference_run)),
            weights_cache_dir=weights_cache,
        )
        assert rerun.stats.computed == 0
        assert rerun.stats.cached == rerun.stats.total == len(reference_run.keys)
        assert record_bytes(rerun) == record_bytes(reference_run)

    def test_resume_after_crash_is_bit_identical(
        self, reference_run, weights_cache, tmp_path
    ):
        sweep = tiny_sweep()
        jobs = sweep.expand()
        store = ResultStore(tmp_path / "interrupted")
        # Simulated crash: half the jobs completed, the process died.
        for job in jobs[: len(jobs) // 2]:
            execute_job(job, store, weights_cache)
        runner_module.clear_runner_memos()
        resumed = run_sweep(sweep, store, weights_cache_dir=weights_cache)
        assert resumed.stats.cached == len(jobs) // 2
        assert resumed.stats.computed == len(jobs) - len(jobs) // 2
        assert resumed.rows == reference_run.rows
        assert record_bytes(resumed) == record_bytes(reference_run)

    def test_two_worker_run_matches_serial_byte_for_byte(
        self, reference_run, weights_cache, tmp_path
    ):
        """Derived-seed determinism across process boundaries: a 2-worker
        pool must reproduce the serial run's ordered rows exactly."""
        parallel = run_sweep(
            tiny_sweep(), ResultStore(tmp_path / "parallel"), jobs=2,
            weights_cache_dir=weights_cache,
        )
        assert parallel.stats.computed == parallel.stats.total
        assert parallel.rows == reference_run.rows
        assert record_bytes(parallel) == record_bytes(reference_run)

    def test_force_recomputes(self, reference_run, weights_cache):
        store = ResultStore(reference_run_store_root(reference_run))
        forced = run_sweep(
            tiny_sweep(), store, force=True, weights_cache_dir=weights_cache
        )
        assert forced.stats.computed == forced.stats.total
        assert record_bytes(forced) == record_bytes(reference_run)

    def test_clean_reference_is_shared_via_the_store(
        self, reference_run, weights_cache
    ):
        """Monte Carlo jobs resolve their clean run to the zero-noise
        evaluate artifact — computed once per (workload, config)."""
        store = ResultStore(reference_run_store_root(reference_run))
        sweep = tiny_sweep()
        jobs = sweep.expand()
        evaluate_keys = {
            job_key(job) for job in jobs if job.kind == "evaluate"
        }
        for job in jobs:
            if job.kind == "monte_carlo":
                payload = store.load(job_key(job))
                assert payload["clean_key"] in evaluate_keys
        # The store holds exactly: one artifact per job (the zero-noise
        # evaluate job *is* the shared clean reference, so no extras).
        assert len(list(store.keys())) == len(jobs)

    def test_clean_reference_persists_into_every_store(
        self, reference_run, weights_cache, tmp_path
    ):
        """A warm in-process memo must not skip writing the clean reference
        into a *different* store — its MC artifacts would then carry a
        dangling clean_key."""
        sweep = tiny_sweep()
        mc_job = next(j for j in sweep.expand() if j.kind == "monte_carlo")
        # reference_run warmed the memo for its own store; now execute the
        # same MC job into a fresh store without clearing memos.
        other = ResultStore(tmp_path / "other-store")
        execute_job(mc_job, other, weights_cache)
        payload = other.load(job_key(mc_job))
        assert other.has(payload["clean_key"]), \
            "clean reference missing from the store that references it"

    def test_zero_noise_scenario_runs_as_single_evaluate_job(self):
        jobs = tiny_sweep().expand()
        evaluate_jobs = [j for j in jobs if j.kind == "evaluate"]
        # two mc_seeds × zero-noise scenario still collapse to ONE job
        assert len(evaluate_jobs) == 1
        assert evaluate_jobs[0].label_dict["sigma"] == 0.0


def reference_run_store_root(reference_run) -> str:
    """The store directory the shared reference run executed against."""
    return reference_run._store_root  # attached by the fixture


class TestMonteCarloCoalescing:
    """The serial executor's cross-job trial coalescer (trial_batch > 1)."""

    def artifact_bytes(self, root) -> dict:
        import hashlib
        from pathlib import Path

        digests = {}
        for path in sorted(Path(root).rglob("*")):
            if not path.is_file():
                continue
            rel = path.relative_to(root)
            # meta sidecars and telemetry record *how* results were
            # produced (durations, worker, backend, trial_batch) — by
            # design outside the byte-identity contract.
            if rel.parts[0] in ("meta", "telemetry") or rel.name == ".lock":
                continue
            digests[str(rel)] = hashlib.sha256(path.read_bytes()).hexdigest()
        return digests

    def test_coalesced_store_is_byte_identical(
        self, reference_run, weights_cache, tmp_path
    ):
        """Sibling per-seed MC jobs coalesced through one batched execution
        write byte-identical artifacts to the per-job reference run."""
        runner_module.clear_runner_memos()
        root = tmp_path / "store-coalesced"
        run = run_sweep(
            tiny_sweep(), ResultStore(root), weights_cache_dir=weights_cache,
            trial_batch=3,
        )
        assert run.stats.computed == run.stats.total
        assert record_bytes(run) == record_bytes(reference_run)
        assert self.artifact_bytes(root) == self.artifact_bytes(
            reference_run_store_root(reference_run)
        )
        # Execution metadata records the coalescing out-of-band.
        store = ResultStore(root)
        mc_keys = [
            job_key(job) for job in tiny_sweep().expand()
            if job.kind == "monte_carlo"
        ]
        assert len(mc_keys) == 2  # the sigma=0.5 scenario's two seeds
        for key in mc_keys:
            meta = json.loads(store.meta_path(key).read_text())
            assert meta["backend"] == "numpy"
            assert meta["trial_batch"] == 3
            assert meta["coalesced"] == 2

    def test_group_signature_selects_only_seed_siblings(self):
        from repro.experiments.runner import mc_group_signature

        jobs = [j for j in tiny_sweep().expand() if j.kind == "monte_carlo"]
        assert len({mc_group_signature(j) for j in jobs}) == 1
        different_trials = dataclasses.replace(jobs[0], trials=jobs[0].trials + 1)
        assert mc_group_signature(different_trials) != mc_group_signature(jobs[0])
        assert mc_group_signature(jobs[0].clean_job()) is None

    def test_execute_mc_group_rejects_mixed_jobs(self, tmp_path):
        from repro.experiments.runner import execute_mc_group

        jobs = [j for j in tiny_sweep().expand() if j.kind == "monte_carlo"]
        mixed = [jobs[0], dataclasses.replace(jobs[1], trials=jobs[1].trials + 1)]
        with pytest.raises(ValueError, match="differing only"):
            execute_mc_group(mixed, ResultStore(tmp_path / "s"), trial_batch=2)


# --------------------------------------------------------------------- #
# Figure-pipeline job kinds: hashing and sibling sharing
# --------------------------------------------------------------------- #
class TestFigureJobKinds:
    def test_new_kinds_hash_on_their_own_axes(self):
        dist = JobSpec(kind="distribution", workload=TINY)
        assert job_key(dist) != job_key(
            dataclasses.replace(dist, distribution=DistributionParams(images=8))
        )
        assert job_key(dist) != job_key(
            dataclasses.replace(
                dist, distribution=DistributionParams(capacity_per_layer=1000)
            )
        )
        power = JobSpec(kind="power", workload=TINY, calibration=CalibrationParams())
        assert job_key(power) != job_key(
            dataclasses.replace(power, power=PowerSpec(uniform_bits=8))
        )
        assert job_key(power) != job_key(
            dataclasses.replace(power, power=PowerSpec(constants={"e_adc_op": 1e-12}))
        )
        assert job_key(power) != job_key(
            dataclasses.replace(
                power, calibration=CalibrationParams(initial_n_max=8)
            )
        )

    def test_reference_datapaths_ignore_unconsumed_fields(self):
        """float/fakequant references are forward passes: no ADC, engine or
        batching in their address."""
        base = JobSpec(kind="evaluate", workload=TINY, datapath="float", images=4)
        assert job_key(base) == job_key(dataclasses.replace(base, adc=AdcSpec(n_r1=3)))
        assert job_key(base) == job_key(dataclasses.replace(base, engine="reference"))
        assert job_key(base) == job_key(dataclasses.replace(base, batch_size=99))
        assert job_key(base) != job_key(dataclasses.replace(base, images=5))
        assert job_key(base) != job_key(dataclasses.replace(base, datapath="fakequant"))

    def test_calibrated_uniform_bits_share_one_distribution_job(self):
        jobs = [
            JobSpec(
                kind="evaluate", workload=TINY, images=4,
                adc=AdcSpec(mode="uniform_calibrated", uniform_bits=bits, calib_images=8),
            )
            for bits in (8, 7, 6, 5, 4)
        ]
        assert len({job_key(j) for j in jobs}) == len(jobs)
        assert len({job_key(j.distribution_job()) for j in jobs}) == 1
        # ... but a different capture is a different artifact.
        other = dataclasses.replace(
            jobs[0], adc=dataclasses.replace(jobs[0].adc, calib_images=4)
        )
        assert job_key(other.distribution_job()) != job_key(jobs[0].distribution_job())

    def test_monte_carlo_with_calibrated_adc_executes(self, weights_cache, tmp_path):
        """An MC job over a uniform_calibrated ADC resolves its configs from
        the shared distribution artifact (it must not hit the
        samples-required ValueError of AdcSpec.build_config)."""
        job = JobSpec(
            kind="monte_carlo", workload=TINY, images=4, batch_size=4,
            adc=AdcSpec(mode="uniform_calibrated", uniform_bits=4, calib_images=8),
            noise=NoiseScenario(
                models=[{"model": "gaussian_read_noise", "sigma": 0.5}],
            ),
            trials=1,
        )
        store = ResultStore(tmp_path / "store")
        execute_job(job, store, weights_cache)
        assert store.has(job_key(job))
        assert store.has(job_key(job.clean_job()))
        assert store.has(job_key(job.distribution_job()))

    def test_power_jobs_share_the_figure_calibration_sibling(self):
        from repro.experiments.presets import fig6c, fig7

        workloads = [TINY]
        cal_jobs = fig6c(workloads=workloads, images=4).sweep.expand()
        power_jobs = fig7(workloads=workloads, images=4).sweep.expand()
        assert job_key(power_jobs[0].calibration_job()) == job_key(cal_jobs[0])

    def test_workload_source_calibration_ignores_resample_seed(self):
        base = JobSpec(
            kind="calibration", workload=TINY,
            calibration=CalibrationParams(source="workload"),
        )
        reseeded = dataclasses.replace(
            base, calibration=dataclasses.replace(base.calibration, calib_seed=7)
        )
        assert job_key(base) == job_key(reseeded)
        resampled = dataclasses.replace(
            base, calibration=dataclasses.replace(base.calibration, source="resampled")
        )
        assert job_key(base) != job_key(resampled)

    def test_mixed_sweeps_roundtrip_and_validate(self):
        from repro.experiments.presets import fig6

        sweep = fig6(workloads=[TINY], images=4).sweep
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert [job_key(j) for j in clone.expand()] == \
               [job_key(j) for j in sweep.expand()]
        with pytest.raises(ValueError, match="explicit_jobs"):
            SweepSpec(name="x", kind="mixed")
        with pytest.raises(ValueError, match="calibration params"):
            JobSpec(kind="power", workload=TINY)


# --------------------------------------------------------------------- #
# Failure policy: logging, tolerance, healing
# --------------------------------------------------------------------- #
def reference_sweep(name: str = "failure-sweep") -> SweepSpec:
    """Cheap evaluate-only sweep (float/fakequant forward passes)."""
    jobs = [
        JobSpec(kind="evaluate", workload=TINY, images=4, datapath=datapath,
                label={"config": config})
        for datapath, config in (("float", "f/f"), ("fakequant", "8/f"))
    ]
    return SweepSpec(name=name, kind="mixed", explicit_jobs=jobs)


class TestFailurePolicy:
    def test_default_policy_logs_and_reraises(self, weights_cache, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = reference_sweep()
        with pytest.raises(RuntimeError, match="injected failure"):
            run_sweep(sweep, store, weights_cache_dir=weights_cache,
                      inject_failures={0})
        log = FailureLog(store)
        keys = list(log.keys())
        assert keys == [job_key(sweep.expand()[0])]
        entry = log.load(keys[0])
        assert "RuntimeError" in entry["error"]
        assert "Traceback" in entry["traceback"]
        assert entry["index"] == 0 and entry["kind"] == "evaluate"
        # The failed job left no artifact, partial or otherwise.
        assert not store.has(keys[0])
        leftovers = [p for p in store.root.iterdir()
                     if p.name.startswith(".") and p.name != ".lock"]
        assert leftovers == []

    def test_tolerated_failure_skips_row_and_heals_on_rerun(
        self, weights_cache, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        sweep = reference_sweep()
        run = run_sweep(sweep, store, weights_cache_dir=weights_cache,
                        inject_failures={0}, max_failures=1)
        assert run.stats.failed == 1 and run.stats.computed == 1
        assert [row["config"] for row in run.rows] == ["8/f"]
        assert len(run.failures) == 1
        assert run.record.metadata["failures"][0]["index"] == 0
        log = FailureLog(store)
        assert len(log) == 1
        # Rerunning without injection retries the failed job, clears its log
        # entry, and converges to the clean run's record byte for byte.
        healed = run_sweep(sweep, store, weights_cache_dir=weights_cache)
        assert healed.stats.failed == 0
        assert [row["config"] for row in healed.rows] == ["f/f", "8/f"]
        assert len(log) == 0
        clean = run_sweep(
            reference_sweep(), ResultStore(tmp_path / "clean"),
            weights_cache_dir=weights_cache,
        )
        assert record_bytes(healed) == record_bytes(clean)

    def test_exceeding_max_failures_raises(self, weights_cache, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(MaxFailuresExceeded, match="max_failures=0"):
            run_sweep(reference_sweep(), store, weights_cache_dir=weights_cache,
                      inject_failures={0, 1}, max_failures=0)
        assert len(FailureLog(store)) == 1  # aborted on the first failure

    def test_parallel_failures_follow_the_same_policy(
        self, weights_cache, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        run = run_sweep(reference_sweep(), store, jobs=2,
                        weights_cache_dir=weights_cache,
                        inject_failures={1}, max_failures=2)
        assert run.stats.failed == 1 and run.stats.computed == 1
        assert [row["config"] for row in run.rows] == ["f/f"]
        assert list(FailureLog(store).keys()) == [
            job_key(reference_sweep().expand()[1])
        ]


# --------------------------------------------------------------------- #
# Spec serialization / CLI plumbing
# --------------------------------------------------------------------- #
class TestSpecs:
    def test_sweep_spec_roundtrips_through_json(self):
        sweep = tiny_sweep()
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert [job_key(j) for j in clone.expand()] == \
               [job_key(j) for j in sweep.expand()]

    def test_experiment_spec_accepts_bare_sweep_dicts(self):
        experiment = ExperimentSpec.from_dict(tiny_sweep().to_dict())
        assert experiment.experiment_id == "tiny-sweep"
        assert len(experiment.sweep.expand()) == len(tiny_sweep().expand())

    def test_presets_expand(self):
        for name in available_presets():
            experiment = build_preset(name, smoke=True)
            jobs = experiment.sweep.expand()
            assert jobs, name
            assert len({job_key(j) for j in jobs}) == len(jobs)

    def test_monte_carlo_job_requires_noise_and_trials(self):
        with pytest.raises(ValueError, match="noise"):
            JobSpec(kind="monte_carlo", workload=TINY, trials=2)
        with pytest.raises(ValueError, match="trials"):
            JobSpec(
                kind="monte_carlo", workload=TINY, trials=0,
                noise=NoiseScenario(models=[{"model": "gaussian_read_noise", "sigma": 1.0}]),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="banana", workload=TINY)
        with pytest.raises(ValueError, match="kind"):
            SweepSpec(name="x", kind="banana", workloads=[TINY])


# --------------------------------------------------------------------- #
# Once-per-process deprecation warnings (parallel-sweep log hygiene)
# --------------------------------------------------------------------- #
class TestWarnOnce:
    def test_warn_once_dedupes_per_key(self):
        reset_warn_once_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert warn_once("k1", "message one") is True
            assert warn_once("k1", "message one") is False
            assert warn_once("k2", "message two") is True
        assert len(caught) == 2
        reset_warn_once_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert warn_once("k1", "message one") is True
        assert len(caught) == 1

    def test_fidelity_shim_warns_once_per_process(self):
        from repro.sim.fidelity import GaussianReadNoise

        reset_warn_once_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            GaussianReadNoise(sigma_levels=0.5)
            GaussianReadNoise(sigma_levels=1.0)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_cell_model_warns_once_per_process(self):
        from repro.crossbar.cell import CellConfig, ReRAMCellModel

        reset_warn_once_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ReRAMCellModel(CellConfig(programming_sigma=0.1))
            ReRAMCellModel(CellConfig(programming_sigma=0.2))
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
