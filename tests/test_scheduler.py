"""Tests of the dependency-graph scheduler and the pluggable executor layer.

The contracts pinned here:

* ``JobSpec.dependencies()`` declares exactly the sibling artifacts each
  kind loads, and the graph takes the transitive closure (a clean
  reference over a calibrated-uniform ADC reaches the distribution capture
  at depth 2).
* Waves are topological at arbitrary depth — a power sweep schedules its
  calibration sibling strictly earlier; already-stored dependencies are
  satisfied and never rescheduled.
* Shared artifacts dedupe across the sweep: N Monte Carlo siblings
  produce one clean-reference node, and a grid point that *is* the shared
  artifact (the zero-noise evaluate) is the same node.
* A failed upstream job marks its transitive dependents failed-with-cause
  instead of letting them recompute and crash, and the whole subtree
  consumes **one** unit of the ``max_failures`` budget.
* Executors are interchangeable: serial, process-pool, resumed and
  2-shard-merged runs of the ``fig6`` and ``multi_workload_robustness``
  presets produce byte-identical aggregate records and store contents.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import (
    AdcSpec,
    FailureLog,
    JobSpec,
    NoiseScenario,
    ProcessPoolExecutor,
    ResultStore,
    SerialExecutor,
    ShardedExecutor,
    SweepSpec,
    WorkloadSpec,
    aggregate_sweep,
    build_job_graph,
    build_preset,
    execute_job,
    expanded_artifacts,
    job_key,
    load_shard_manifest,
    plan_shards,
    resolve_executor,
    run_shard_manifest,
    run_sweep,
    write_shard_manifests,
)
from repro.experiments import runner as runner_module
from repro.experiments.presets import fig6, fig7
from repro.experiments.scheduler import UpstreamFailed

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)

NOISE = NoiseScenario(
    models=[{"model": "gaussian_read_noise", "sigma": 0.5}], label={"sigma": 0.5},
)


def tiny_mc_sweep(name: str = "sched-sweep") -> SweepSpec:
    """One zero-noise evaluate (the shared clean reference) + two MC jobs."""
    return SweepSpec(
        name=name,
        kind="monte_carlo",
        workloads=[TINY],
        noises=[NoiseScenario(label={"sigma": 0.0}), NOISE],
        mc_seeds=[0, 1],
        trials=2,
        images=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


def record_bytes(run) -> bytes:
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


def store_listing(store: ResultStore):
    """(name, bytes) of every artifact — the store-equality oracle."""
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.glob("*.json"))
    }


# --------------------------------------------------------------------- #
# JobSpec.dependencies()
# --------------------------------------------------------------------- #
class TestDependencies:
    def test_monte_carlo_depends_on_its_clean_job(self):
        mc = next(j for j in tiny_mc_sweep().expand() if j.kind == "monte_carlo")
        deps = mc.dependencies()
        assert [d.kind for d in deps] == ["evaluate"]
        assert job_key(deps[0]) == job_key(mc.clean_job())

    def test_calibrated_uniform_evaluate_depends_on_the_capture(self):
        job = JobSpec(
            kind="evaluate", workload=TINY, images=4,
            adc=AdcSpec(mode="uniform_calibrated", uniform_bits=4, calib_images=8),
        )
        assert [d.kind for d in job.dependencies()] == ["distribution"]

    def test_power_depends_on_its_calibration_sibling(self):
        power = fig7(workloads=[TINY], images=4).sweep.expand()[0]
        deps = power.dependencies()
        assert [d.kind for d in deps] == ["calibration"]
        assert job_key(deps[0]) == job_key(power.calibration_job())

    def test_reference_datapaths_and_plain_evaluates_have_no_deps(self):
        assert JobSpec(
            kind="evaluate", workload=TINY, datapath="float", images=4
        ).dependencies() == []
        assert JobSpec(kind="evaluate", workload=TINY, images=4).dependencies() == []
        assert JobSpec(kind="distribution", workload=TINY).dependencies() == []

    def test_transitive_closure_reaches_the_capture_through_the_clean_job(self):
        """An MC job over a calibrated-uniform ADC: its clean reference
        itself depends on the distribution capture (depth 2)."""
        mc = JobSpec(
            kind="monte_carlo", workload=TINY, images=4, batch_size=4,
            adc=AdcSpec(mode="uniform_calibrated", uniform_bits=4, calib_images=8),
            noise=NOISE, trials=1,
        )
        clean_deps = mc.clean_job().dependencies()
        assert [d.kind for d in clean_deps] == ["distribution"]
        artifacts = expanded_artifacts([mc])
        assert sorted(j.kind for j in artifacts.values()) == [
            "distribution", "evaluate", "monte_carlo",
        ]


# --------------------------------------------------------------------- #
# Graph construction: dedupe, satisfied deps, waves
# --------------------------------------------------------------------- #
class TestJobGraph:
    def test_shared_clean_reference_dedupes_across_mc_siblings(self, tmp_path):
        sweep = tiny_mc_sweep()
        jobs = sweep.expand()
        graph = build_job_graph(list(enumerate(jobs)), ResultStore(tmp_path / "s"))
        # 3 sweep jobs -> 3 nodes: the zero-noise evaluate IS the clean
        # reference of both MC jobs (no extra dependency node).
        assert len(graph) == 3
        evaluate = next(n for n in graph if n.job.kind == "evaluate")
        assert evaluate.indices == (0,)
        for node in graph:
            if node.job.kind == "monte_carlo":
                assert node.dependencies == (evaluate.key,)

    def test_power_sweep_schedules_calibration_in_an_earlier_wave(self, tmp_path):
        sweep = fig7(workloads=[TINY], images=4).sweep
        graph = build_job_graph(
            list(enumerate(sweep.expand())), ResultStore(tmp_path / "s")
        )
        waves = graph.waves()
        assert [[n.job.kind for n in wave] for wave in waves] == [
            ["calibration"], ["power"],
        ]
        # The shared calibration node is not a grid point of the sweep.
        assert waves[0][0].indices == ()
        assert waves[1][0].indices == (0,)

    def test_three_deep_waves_for_mc_over_calibrated_uniform(self, tmp_path):
        mc = JobSpec(
            kind="monte_carlo", workload=TINY, images=4, batch_size=4,
            adc=AdcSpec(mode="uniform_calibrated", uniform_bits=4, calib_images=8),
            noise=NOISE, trials=1,
        )
        graph = build_job_graph([(0, mc)], ResultStore(tmp_path / "s"))
        assert [[n.job.kind for n in wave] for wave in graph.waves()] == [
            ["distribution"], ["evaluate"], ["monte_carlo"],
        ]

    def test_stored_dependencies_are_satisfied_not_scheduled(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep()
        jobs = sweep.expand()
        store = ResultStore(tmp_path / "s")
        execute_job(jobs[0], store, weights_cache)  # the clean reference
        pending = [(i, j) for i, j in enumerate(jobs) if not store.has(job_key(j))]
        graph = build_job_graph(pending, store)
        assert len(graph) == 2  # just the MC jobs
        assert all(node.dependencies == () for node in graph)
        assert len(graph.waves()) == 1

    def test_fig6_dedupes_the_distribution_capture(self, tmp_path):
        sweep = fig6(workloads=[TINY], images=4, bits=[5, 4]).sweep
        jobs = sweep.expand()
        graph = build_job_graph(
            list(enumerate(jobs)), ResultStore(tmp_path / "s")
        )
        captures = [n for n in graph if n.job.kind == "distribution"]
        assert len(captures) == 1  # both sensing precisions share one capture
        assert captures[0].indices == ()  # not itself a grid point
        assert len(graph) == len(jobs) + 1
        ucal = [
            n for n in graph
            if n.job.kind == "evaluate" and n.job.adc.needs_distributions
        ]
        assert all(n.dependencies == (captures[0].key,) for n in ucal)

    def test_transitive_dependents(self, tmp_path):
        mc = JobSpec(
            kind="monte_carlo", workload=TINY, images=4, batch_size=4,
            adc=AdcSpec(mode="uniform_calibrated", uniform_bits=4, calib_images=8),
            noise=NOISE, trials=1,
        )
        graph = build_job_graph([(0, mc)], ResultStore(tmp_path / "s"))
        capture = next(n for n in graph if n.job.kind == "distribution")
        downstream = graph.transitive_dependents(capture.key)
        assert [n.job.kind for n in downstream] == ["evaluate", "monte_carlo"]


# --------------------------------------------------------------------- #
# Failure propagation: failed-with-cause, counted once
# --------------------------------------------------------------------- #
class TestUpstreamFailurePropagation:
    def test_dependents_of_a_failed_upstream_are_marked_not_recomputed(
        self, tmp_path, weights_cache
    ):
        """Injecting a failure into the shared clean reference (job 0) must
        mark both MC dependents failed-with-cause — and the whole subtree
        counts ONCE against max_failures (1 root + 2 dependents fits a
        budget of 1)."""
        sweep = tiny_mc_sweep()
        store = ResultStore(tmp_path / "store")
        run = run_sweep(
            sweep, store, weights_cache_dir=weights_cache,
            inject_failures={0}, max_failures=1,
        )
        assert run.stats.failed == 3 and run.stats.computed == 0
        assert run.rows == []
        root_key = run.keys[0]
        log = FailureLog(store)
        assert len(log) == 3
        propagated = [e for e in run.failures if e.get("cause_key")]
        assert len(propagated) == 2
        assert all(e["cause_key"] == root_key for e in propagated)
        assert all("UpstreamFailed" in e["error"] for e in propagated)
        assert [e for e in run.failures if not e.get("cause_key")][0]["key"] == root_key
        # metadata mirrors the cause for downstream tooling
        assert sum(
            1 for f in run.record.metadata["failures"] if f.get("cause_key")
        ) == 2

    def test_budget_of_zero_still_aborts_on_the_root(self, tmp_path, weights_cache):
        from repro.experiments import MaxFailuresExceeded

        with pytest.raises(MaxFailuresExceeded, match="max_failures=0"):
            run_sweep(
                tiny_mc_sweep(), ResultStore(tmp_path / "store"),
                weights_cache_dir=weights_cache,
                inject_failures={0}, max_failures=0,
            )

    def test_rerun_heals_the_whole_subtree(self, tmp_path, weights_cache):
        sweep = tiny_mc_sweep()
        store = ResultStore(tmp_path / "store")
        run_sweep(sweep, store, weights_cache_dir=weights_cache,
                  inject_failures={0}, max_failures=1)
        assert len(FailureLog(store)) == 3
        healed = run_sweep(sweep, store, weights_cache_dir=weights_cache)
        assert healed.stats.failed == 0
        assert healed.stats.computed == healed.stats.total == 3
        assert len(FailureLog(store)) == 0
        clean = run_sweep(
            tiny_mc_sweep(), ResultStore(tmp_path / "clean"),
            weights_cache_dir=weights_cache,
        )
        assert record_bytes(healed) == record_bytes(clean)

    def test_failed_shared_dependency_heals_on_rerun(
        self, tmp_path, weights_cache, monkeypatch
    ):
        """A root failure on a NON-grid node (fig7's calibration sibling):
        its entry must be surfaced under its own key, count once, and be
        cleared when a rerun recomputes it successfully."""
        experiment = fig7(workloads=[TINY], images=4)
        store = ResultStore(tmp_path / "store")

        def explode(*args, **kwargs):
            raise RuntimeError("calibration died")

        monkeypatch.setattr(runner_module, "_execute_calibration", explode)
        run = run_sweep(
            experiment.sweep, store, weights_cache_dir=weights_cache,
            max_failures=1,
        )
        # 1 root (the shared calibration, no grid index) + 1 propagated
        # power job; the subtree fits a budget of 1.
        assert run.stats.failed == 2 and run.rows == []
        log = FailureLog(store)
        assert len(log) == 2
        root_key = job_key(experiment.sweep.expand()[0].calibration_job())
        assert log.has(root_key)
        assert log.load(root_key).get("index") is None

        monkeypatch.undo()
        runner_module.clear_runner_memos()
        healed = run_sweep(
            experiment.sweep, store, weights_cache_dir=weights_cache,
        )
        assert healed.stats.failed == 0 and len(healed.rows) == 1
        assert len(log) == 0, "healed shared-dependency entry not cleared"

    def test_parallel_propagation_matches_serial(self, tmp_path, weights_cache):
        serial = run_sweep(
            tiny_mc_sweep(), ResultStore(tmp_path / "serial"),
            weights_cache_dir=weights_cache,
            inject_failures={0}, max_failures=1,
        )
        parallel = run_sweep(
            tiny_mc_sweep(), ResultStore(tmp_path / "parallel"), jobs=2,
            weights_cache_dir=weights_cache,
            inject_failures={0}, max_failures=1,
        )
        assert parallel.stats.failed == serial.stats.failed == 3
        assert record_bytes(parallel) == record_bytes(serial)


# --------------------------------------------------------------------- #
# Executor resolution and sharding plumbing
# --------------------------------------------------------------------- #
class TestExecutorResolution:
    def test_default_keeps_historical_behaviour(self):
        assert isinstance(resolve_executor(None, jobs=1), SerialExecutor)
        pool = resolve_executor(None, jobs=3)
        assert isinstance(pool, ProcessPoolExecutor) and pool.max_workers == 3

    def test_names_and_instances(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process"), ProcessPoolExecutor)
        sharded = resolve_executor("sharded", shards=4)
        assert isinstance(sharded, ShardedExecutor) and sharded.shards == 4
        instance = SerialExecutor()
        assert resolve_executor(instance) is instance
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("banana")

    def test_plan_shards_round_robin(self):
        jobs = tiny_mc_sweep().expand()
        groups = plan_shards(jobs, 2)
        assert [[i for i, _ in g] for g in groups] == [[0, 2], [1]]
        with pytest.raises(ValueError, match="shards"):
            plan_shards(jobs, 0)

    def test_manifest_roundtrip(self, tmp_path):
        experiment = build_preset("robustness-noise", smoke=True)
        paths = write_shard_manifests(
            experiment.sweep, 2, tmp_path / "shards", experiment=experiment,
        )
        assert len(paths) == 2
        total = 0
        for shard_index, path in enumerate(paths):
            manifest = load_shard_manifest(path)
            assert manifest["shard_index"] == shard_index
            assert manifest["shard_count"] == 2
            assert manifest["experiment"]["experiment_id"] == "robustness-noise"
            clone = SweepSpec.from_dict(manifest["sweep"])
            expanded = clone.expand()
            for entry in manifest["jobs"]:
                assert entry["key"] == job_key(expanded[entry["index"]])
            total += len(manifest["jobs"])
        assert total == len(experiment.sweep.expand())

    def test_bad_manifest_rejected(self, tmp_path):
        path = tmp_path / "not-a-manifest.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a shard manifest"):
            load_shard_manifest(path)


# --------------------------------------------------------------------- #
# Acceptance: serial / process / resumed / 2-shard-merged bit-identity
# --------------------------------------------------------------------- #
def _run_all_modes(experiment, tmp_path, weights_cache):
    """Serial, process-pool, resumed and 2-shard-merged runs of one sweep;
    returns the four (record bytes, store listing) pairs."""
    sweep = experiment.sweep
    results = {}

    serial = run_sweep(
        sweep, ResultStore(tmp_path / "serial"),
        weights_cache_dir=weights_cache, experiment=experiment,
    )
    assert serial.stats.computed == serial.stats.total
    results["serial"] = (record_bytes(serial), store_listing(ResultStore(tmp_path / "serial")))

    runner_module.clear_runner_memos()
    parallel = run_sweep(
        sweep, ResultStore(tmp_path / "parallel"), jobs=2,
        weights_cache_dir=weights_cache, experiment=experiment,
    )
    results["process"] = (record_bytes(parallel), store_listing(ResultStore(tmp_path / "parallel")))

    # Resume: compute the first half out-of-band, then run the sweep.
    runner_module.clear_runner_memos()
    resumed_store = ResultStore(tmp_path / "resumed")
    jobs = sweep.expand()
    for job in jobs[: len(jobs) // 2]:
        execute_job(job, resumed_store, weights_cache)
    runner_module.clear_runner_memos()
    resumed = run_sweep(
        sweep, resumed_store, weights_cache_dir=weights_cache,
        experiment=experiment,
    )
    assert resumed.stats.cached == len(jobs) // 2
    results["resumed"] = (record_bytes(resumed), store_listing(resumed_store))

    # Two shards, run in-process via the manifest runner, then merged.
    runner_module.clear_runner_memos()
    shard_store = ResultStore(tmp_path / "sharded")
    manifest_paths = write_shard_manifests(
        sweep, 2, tmp_path / "manifests", experiment=experiment,
    )
    for path in manifest_paths:
        runner_module.clear_runner_memos()  # each shard is a fresh process
        statuses = run_shard_manifest(
            load_shard_manifest(path), shard_store, weights_cache_dir=weights_cache,
        )
        assert all(s["status"] in ("done", "cached") for s in statuses)
    merged = aggregate_sweep(sweep, shard_store, experiment=experiment)
    assert len(merged.rows) == len(jobs)
    results["sharded"] = (record_bytes(merged), store_listing(shard_store))
    return results


class TestExecutorEquivalence:
    def test_fig6_modes_are_byte_identical(self, tmp_path, weights_cache):
        experiment = fig6(workloads=[TINY], images=4, bits=[5, 4])
        results = _run_all_modes(experiment, tmp_path, weights_cache)
        reference_record, reference_store = results["serial"]
        for mode, (record, store) in results.items():
            assert record == reference_record, f"{mode} aggregate differs"
            assert store == reference_store, f"{mode} store contents differ"

    def test_multi_workload_robustness_modes_are_byte_identical(
        self, tmp_path, weights_cache
    ):
        experiment = build_preset(
            "multi-workload-robustness", smoke=True,
            workload_names=["lenet5"], images=4, trials=2,
        )
        results = _run_all_modes(experiment, tmp_path, weights_cache)
        reference_record, reference_store = results["serial"]
        for mode, (record, store) in results.items():
            assert record == reference_record, f"{mode} aggregate differs"
            assert store == reference_store, f"{mode} store contents differ"

    def test_sharded_executor_subprocesses_match_serial(
        self, tmp_path, weights_cache
    ):
        """--executor sharded end to end (real subprocesses) on a cheap
        reference-evaluate sweep."""
        jobs = [
            JobSpec(kind="evaluate", workload=TINY, images=4, datapath=datapath,
                    label={"config": config})
            for datapath, config in (("float", "f/f"), ("fakequant", "8/f"))
        ]
        sweep = SweepSpec(name="sharded-refs", kind="mixed", explicit_jobs=jobs)
        serial = run_sweep(
            sweep, ResultStore(tmp_path / "serial"),
            weights_cache_dir=weights_cache,
        )
        sharded = run_sweep(
            sweep, ResultStore(tmp_path / "sharded"),
            weights_cache_dir=weights_cache, executor="sharded", shards=2,
        )
        assert sharded.stats.computed == sharded.stats.total == 2
        assert record_bytes(sharded) == record_bytes(serial)
        assert store_listing(ResultStore(tmp_path / "sharded")) == \
               store_listing(ResultStore(tmp_path / "serial"))


# --------------------------------------------------------------------- #
# Failure-log age and expiry (the `show --expire-failures` plumbing)
# --------------------------------------------------------------------- #
class TestFailureLogAge:
    def test_age_and_expiry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        log = FailureLog(store)
        job = JobSpec(kind="evaluate", workload=TINY, images=4, datapath="float")
        entry = log.record("k1", job, RuntimeError("boom"), index=0)
        now = __import__("datetime").datetime.fromisoformat(
            entry["logged_at"]
        ).timestamp()
        assert log.age_seconds("k1", now=now) == pytest.approx(0.0, abs=1e-6)
        assert log.age_seconds("k1", now=now + 90) == pytest.approx(90.0, abs=1e-6)
        # expire: too-young entries survive, old ones are dropped
        assert log.expire(120, now=now + 90) == []
        assert log.has("k1")
        assert log.expire(60, now=now + 90) == ["k1"]
        assert not log.has("k1")

    def test_unparsable_timestamps_are_left_alone(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        log = FailureLog(store)
        job = JobSpec(kind="evaluate", workload=TINY, images=4, datapath="float")
        log.record("k1", job, RuntimeError("boom"))
        entry_path = log.path("k1")
        damaged = json.loads(entry_path.read_text())
        damaged["logged_at"] = "not-a-timestamp"
        entry_path.write_text(json.dumps(damaged))
        assert log.age_seconds("k1") is None
        assert log.expire(0) == []
        assert log.has("k1")

    def test_upstream_failed_entries_carry_the_cause(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        log = FailureLog(store)
        job = JobSpec(kind="evaluate", workload=TINY, images=4, datapath="float")
        error = UpstreamFailed("not run: upstream abc failed", "abc123")
        entry = log.record("k2", job, error, cause_key="abc123")
        assert entry["cause_key"] == "abc123"
        assert json.loads(log.path("k2").read_text())["cause_key"] == "abc123"
