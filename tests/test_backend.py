"""The array-ops backend shim: registry semantics and the numpy oracle.

The tolerance contract itself (torch within ``BACKEND_RTOL`` of numpy on
a real noisy evaluation) lives in
``tests/test_mc_batched.py::TestTorchBackendTolerance`` and auto-skips
without torch; everything here is torch-free and runs everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayOps,
    NumpyOps,
    active_backend_name,
    active_ops,
    available_backends,
    register_backend,
    set_backend,
)
from repro.utils.numeric import round_half_up
from repro.utils.rng import new_rng


@pytest.fixture(autouse=True)
def reset_backend():
    """Every test leaves the process on the numpy default."""
    yield
    set_backend("numpy")


class TestRegistry:
    def test_builtins_registered(self):
        assert "numpy" in available_backends()
        assert "torch" in available_backends()

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        set_backend(None)
        assert active_backend_name() == "numpy"
        assert active_ops().bit_exact

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert set_backend(None).name == "numpy"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            set_backend("no-such-backend")
        with pytest.raises(ValueError, match="numpy"):
            set_backend("no-such-backend")

    def test_unknown_env_backend_fails_on_resolve(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
        with pytest.raises(ValueError, match="unknown array backend"):
            set_backend(None)

    def test_custom_registration_last_wins(self):
        class Probe(NumpyOps):
            name = "probe"

        register_backend("probe", Probe)
        try:
            assert "probe" in available_backends()
            assert isinstance(set_backend("probe"), Probe)
            assert active_backend_name() == "probe"
        finally:
            # the registry is process-global: leave no probe behind the
            # name, but a stale key is harmless (selection is by name).
            set_backend("numpy")

    def test_torch_selection_requires_torch(self):
        """Selecting torch either works or raises the documented ImportError.

        The dependency check happens at *selection* time, never at import
        time — this test passes on machines with and without torch.
        """
        try:
            ops = set_backend("torch")
        except ImportError as err:
            assert "torch" in str(err)
        else:
            assert ops.name == "torch"
            assert not ops.bit_exact

    def test_protocol_methods_are_abstract(self):
        ops = ArrayOps()
        with pytest.raises(NotImplementedError):
            ops.matmul(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(NotImplementedError):
            ops.keyed_normal(0, 1.0, (2,))


class TestNumpyOracle:
    """NumpyOps must be the very numpy calls the kernels made pre-shim."""

    def test_matmul_out_identity(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        out = np.empty((3, 5))
        got = NumpyOps().matmul(a, b, out=out)
        assert got is out
        np.testing.assert_array_equal(out, a @ b)

    def test_take_matches_numpy(self):
        table = np.arange(10.0) * 1.5
        indices = np.array([[0, 9], [3, 3]])
        np.testing.assert_array_equal(
            NumpyOps().take(table, indices), np.take(table, indices)
        )

    def test_bincount_minlength(self):
        codes = np.array([0, 2, 2, 5])
        got = NumpyOps().bincount(codes, minlength=8)
        assert got.shape == (8,)
        np.testing.assert_array_equal(got, np.bincount(codes, minlength=8))

    def test_round_half_up_matches_utils(self):
        values = np.array([-1.5, -0.5, 0.5, 1.5, 2.5])
        np.testing.assert_array_equal(
            NumpyOps().round_half_up(values), round_half_up(values)
        )

    def test_clip_min(self):
        values = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(
            NumpyOps().clip_min(values, 0.0), np.maximum(values, 0.0)
        )

    def test_keyed_normal_is_new_rng_canonical(self):
        got = NumpyOps().keyed_normal(1234, 0.5, (3, 4))
        want = new_rng(1234).normal(0.0, 0.5, size=(3, 4))
        np.testing.assert_array_equal(got, want)
        # and keyed: same seed → same bytes, regardless of call order
        again = NumpyOps().keyed_normal(1234, 0.5, (3, 4))
        assert got.tobytes() == again.tobytes()
