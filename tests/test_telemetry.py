"""Tests of the sweep-telemetry subsystem (tracing, analysis, CLI).

The contracts pinned here:

* Telemetry is strictly out-of-band: serial, process-pool, sharded and
  resumed runs with ``trace`` on produce aggregate records and store
  contents byte-identical to an untraced serial run.
* The merged event stream accounts for every executed job exactly once
  (one start + one finish pair per content address), and cache-hit
  counters match the store's skip count.
* ``critical_path`` returns a dependency-consistent chain (each job
  waited on its predecessor) whose summed duration never exceeds the
  sweep's elapsed time.
* Straggler detection is relative *and* absolute, so seconds-fast
  balanced runs never flag noise.
* The CLI wires ``-v/-vv/-q`` to ``set_verbosity`` on every subcommand,
  ``show`` surfaces per-job timing metadata and sweep-level telemetry,
  and the ``trace`` subcommands render the recorded runs.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.experiments import (
    NoiseScenario,
    ResultStore,
    SweepSpec,
    WorkloadSpec,
    build_preset,
    execute_job,
    job_key,
    run_sweep,
)
from repro.experiments import runner as runner_module
from repro.experiments.cli import main as cli_main
from repro.telemetry import (
    NULL_TRACER,
    JsonlTracer,
    TraceRun,
    critical_path,
    find_stragglers,
    load_events,
    load_run,
    merge_events,
    resolve_tracer,
    summarize,
    wave_stats,
)
from repro.telemetry import events as ev
from repro.utils.logging import set_verbosity, verbosity_to_level

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)

NOISE = NoiseScenario(
    models=[{"model": "gaussian_read_noise", "sigma": 0.5}], label={"sigma": 0.5},
)


def tiny_mc_sweep(name: str = "telemetry-sweep") -> SweepSpec:
    """One zero-noise evaluate (the shared clean reference) + two MC jobs."""
    return SweepSpec(
        name=name,
        kind="monte_carlo",
        workloads=[TINY],
        noises=[NoiseScenario(label={"sigma": 0.0}), NOISE],
        mc_seeds=[0, 1],
        trials=2,
        images=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


def record_bytes(run) -> bytes:
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


def store_listing(store: ResultStore):
    """(name, bytes) of every artifact — the store-equality oracle."""
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.glob("*.json"))
    }


def write_stream(directory, stream, events):
    """Hand-craft one JSONL stream file for analysis-layer unit tests."""
    directory.mkdir(parents=True, exist_ok=True)
    lines = []
    for seq, event in enumerate(events, start=1):
        lines.append(json.dumps({
            "run_id": "synthetic", "stream": stream, "pid": 1, "seq": seq,
            "t_wall": 0.0, **event,
        }))
    (directory / f"events-{stream}.jsonl").write_text("\n".join(lines) + "\n")


def job_pair(key, kind, start, end, stream=None, wave=1, deps=()):
    """A start/finish event pair for one synthetic job execution."""
    return [
        {"event": ev.JOB_START, "key": key, "kind": kind, "wave": wave,
         "deps": list(deps), "t_mono": start},
        {"event": ev.JOB_FINISH, "key": key, "kind": kind, "wave": wave,
         "duration_s": end - start, "t_mono": end},
    ]


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_emit_writes_enveloped_jsonl_lines(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "run", run_id="r1", stream="s1")
        tracer.emit("job_start", key="k", kind="evaluate", skipped=None)
        tracer.emit("job_finish", key="k", duration_s=0.5)
        tracer.close()
        events = load_events(tmp_path / "run")
        assert [e["event"] for e in events] == ["job_start", "job_finish"]
        first = events[0]
        assert first["run_id"] == "r1" and first["stream"] == "s1"
        assert first["seq"] == 1 and events[1]["seq"] == 2
        assert "t_mono" in first and "t_wall" in first and "pid" in first
        assert "skipped" not in first  # None-valued fields are dropped

    def test_span_emits_start_and_finish_with_duration(self, tmp_path):
        tracer = JsonlTracer(tmp_path, stream="s")
        with tracer.span("prewarm"):
            pass
        tracer.close()
        events = load_events(tmp_path)
        assert [e["event"] for e in events] == ["prewarm_start", "prewarm_finish"]
        assert events[1]["duration_s"] >= 0.0

    def test_null_tracer_is_disabled_and_writes_nothing(self, tmp_path):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit("job_start", key="k")
        NULL_TRACER.counter("c", 1)
        with NULL_TRACER.span("x"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_resolve_tracer_mapping(self, tmp_path):
        assert resolve_tracer(None, tmp_path) is NULL_TRACER
        assert resolve_tracer(False, tmp_path) is NULL_TRACER
        own = JsonlTracer(tmp_path / "mine")
        assert resolve_tracer(own, tmp_path) is own
        fresh = resolve_tracer(True, tmp_path)
        assert fresh.enabled
        assert fresh.directory.parent == tmp_path / "telemetry"
        named = resolve_tracer("run-42", tmp_path)
        assert named.directory == tmp_path / "telemetry" / "run-42"
        assert named.run_id == "run-42"

    def test_load_events_merges_streams_and_skips_torn_tail(self, tmp_path):
        write_stream(tmp_path, "a", [{"event": "x", "t_mono": 2.0}])
        write_stream(tmp_path, "b", [{"event": "y", "t_mono": 1.0}])
        with open(tmp_path / "events-b.jsonl", "a") as handle:
            handle.write('{"event": "torn", "t_mo')  # killed mid-write
        events = load_events(tmp_path)
        assert [e["event"] for e in events] == ["y", "x"]  # t_mono order

    def test_merge_events_writes_single_ordered_stream(self, tmp_path):
        write_stream(tmp_path, "a", [{"event": "x", "t_mono": 2.0}])
        write_stream(tmp_path, "b", [{"event": "y", "t_mono": 1.0}])
        merged = merge_events(tmp_path)
        lines = merged.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["y", "x"]


# --------------------------------------------------------------------- #
# Analysis (synthetic streams)
# --------------------------------------------------------------------- #
class TestAnalysis:
    def test_critical_path_follows_the_longest_dependency_chain(self, tmp_path):
        events = []
        events += job_pair("k1", "distribution", 0.0, 5.0, wave=1)
        events += job_pair("k2", "evaluate", 5.0, 6.0, wave=2, deps=["k1"])
        events += job_pair("k3", "evaluate", 0.0, 3.0, wave=1)  # independent
        write_stream(tmp_path, "s", events)
        chain = critical_path(TraceRun(tmp_path))
        assert [e.key for e in chain] == ["k1", "k2"]
        assert sum(e.duration_s for e in chain) == pytest.approx(6.0)

    def test_critical_path_ignores_cached_dependencies(self, tmp_path):
        # k2 depends on k9, which was a cache hit: it bounded nothing.
        events = [{"event": ev.JOB_CACHED, "key": "k9", "kind": "evaluate",
                   "t_mono": 0.0}]
        events += job_pair("k2", "monte_carlo", 0.0, 2.0, deps=["k9"])
        write_stream(tmp_path, "s", events)
        chain = critical_path(TraceRun(tmp_path))
        assert [e.key for e in chain] == ["k2"]

    def test_wave_stats_utilization(self, tmp_path):
        # Two streams, one wave spanning 10s: A busy 10, B busy 4.
        write_stream(tmp_path, "a", job_pair("a1", "evaluate", 0.0, 10.0))
        write_stream(tmp_path, "b", job_pair("b1", "evaluate", 0.0, 4.0))
        (stats,) = wave_stats(TraceRun(tmp_path))
        assert stats.jobs == 2 and stats.streams == 2
        assert stats.span_s == pytest.approx(10.0)
        assert stats.utilization == pytest.approx(14.0 / 20.0)

    def test_straggler_detection_is_relative_and_absolute(self, tmp_path):
        write_stream(tmp_path, "a", job_pair("a1", "monte_carlo", 0.0, 10.0))
        write_stream(tmp_path, "b", job_pair("b1", "monte_carlo", 0.0, 1.0))
        write_stream(tmp_path, "c", job_pair("c1", "monte_carlo", 0.0, 1.0))
        run = TraceRun(tmp_path)
        (straggler,) = find_stragglers(run)
        assert straggler.stream == "a"
        assert straggler.busy_s == pytest.approx(10.0)
        # Same shape scaled to sub-second: relative gap alone must not flag.
        fast = tmp_path / "fast"
        write_stream(fast, "a", job_pair("a1", "monte_carlo", 0.0, 0.3))
        write_stream(fast, "b", job_pair("b1", "monte_carlo", 0.0, 0.1))
        write_stream(fast, "c", job_pair("c1", "monte_carlo", 0.0, 0.1))
        assert find_stragglers(TraceRun(fast)) == []

    def test_duplicate_executions_are_surfaced_not_collapsed(self, tmp_path):
        # Two racing shards honestly both computed the shared sibling.
        write_stream(tmp_path, "a", job_pair("dup", "evaluate", 0.0, 1.0))
        write_stream(tmp_path, "b", job_pair("dup", "evaluate", 0.5, 1.5))
        run = TraceRun(tmp_path)
        assert len(run.executions()) == 2
        assert run.duplicate_keys() == ["dup"]
        assert summarize(run)["duplicates"] == ["dup"]

    def test_counters_keep_the_latest_sample(self, tmp_path):
        write_stream(tmp_path, "s", [
            {"event": ev.COUNTER, "name": "c", "value": 1, "t_mono": 0.0},
            {"event": ev.COUNTER, "name": "c", "value": 3, "t_mono": 1.0},
        ])
        assert TraceRun(tmp_path).counters() == {"c": 3.0}


# --------------------------------------------------------------------- #
# Execution metadata sidecar (satellite: promoted per-job timing)
# --------------------------------------------------------------------- #
class TestMetaSidecar:
    def test_execute_job_records_duration_and_worker(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        meta = store.load_meta(key)
        assert meta["duration_s"] > 0.0
        assert meta["worker"].startswith("pid-")
        assert meta["kind"] == job.kind

    def test_meta_lives_outside_the_artifact_namespace(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        assert list(store.keys()) == [key]  # meta/ never pollutes the root
        assert store.meta_path(key).parent.name == "meta"

    def test_delete_drops_the_sidecar_too(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        store.delete(key)
        assert store.load_meta(key) == {}
        assert not store.meta_path(key).exists()


# --------------------------------------------------------------------- #
# Traced execution across every executor
# --------------------------------------------------------------------- #
def _traced_runs(experiment, tmp_path, weights_cache):
    """Serial/process/sharded/resumed runs of one sweep, all traced."""
    sweep = experiment.sweep
    runs = {}

    serial = run_sweep(
        sweep, ResultStore(tmp_path / "serial"),
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )
    runs["serial"] = serial

    runner_module.clear_runner_memos()
    runs["process"] = run_sweep(
        sweep, ResultStore(tmp_path / "process"), jobs=2, executor="process",
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )

    runner_module.clear_runner_memos()
    runs["sharded"] = run_sweep(
        sweep, ResultStore(tmp_path / "sharded"), executor="sharded", shards=2,
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )

    # Resume: compute the first half out-of-band, then the traced run.
    runner_module.clear_runner_memos()
    resumed_store = ResultStore(tmp_path / "resumed")
    jobs = sweep.expand()
    for job in jobs[: len(jobs) // 2]:
        execute_job(job, resumed_store, weights_cache)
    runner_module.clear_runner_memos()
    runs["resumed"] = run_sweep(
        sweep, resumed_store, weights_cache_dir=weights_cache,
        experiment=experiment, trace=True,
    )
    return runs


class TestTracedExecutors:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory, weights_cache):
        runner_module.clear_runner_memos()
        tmp_path = tmp_path_factory.mktemp("traced-modes")
        experiment = build_preset(
            "robustness-noise", smoke=True, images=4, trials=2,
        )
        runner_module.clear_runner_memos()
        untraced = run_sweep(
            experiment.sweep, ResultStore(tmp_path / "reference"),
            weights_cache_dir=weights_cache, experiment=experiment,
        )
        return {
            "tmp_path": tmp_path,
            "reference": untraced,
            "runs": _traced_runs(experiment, tmp_path, weights_cache),
        }

    def test_traced_runs_are_byte_identical_to_untraced(self, traced):
        tmp_path = traced["tmp_path"]
        reference_record = record_bytes(traced["reference"])
        reference_store = store_listing(ResultStore(tmp_path / "reference"))
        for mode, run in traced["runs"].items():
            assert record_bytes(run) == reference_record, f"{mode} differs"
            assert store_listing(ResultStore(tmp_path / mode)) == reference_store, (
                f"{mode} store contents differ"
            )

    def test_every_mode_records_a_telemetry_run(self, traced):
        for mode, run in traced["runs"].items():
            assert run.telemetry_dir is not None, mode
            trace = load_run(run.telemetry_dir)
            assert trace.events, mode
            assert trace.manifest.get("sweep") == run.sweep.name

    def test_merged_stream_accounts_for_every_executed_job_exactly_once(
        self, traced
    ):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            executions = trace.executions()
            assert all(e.closed for e in executions), mode
            assert trace.duplicate_keys() == [], mode
            executed_keys = {e.key for e in executions}
            cached_keys = set(trace.cached_keys())
            assert len(executions) + len(cached_keys) >= run.stats.total, mode
            assert executed_keys.isdisjoint(cached_keys), mode
            # The merged single-file stream tells the same story.
            merged = (trace.directory / "merged.jsonl").read_text().splitlines()
            merged_events = [json.loads(line) for line in merged]
            starts = [e for e in merged_events if e["event"] == ev.JOB_START]
            closes = [
                e for e in merged_events
                if e["event"] in (ev.JOB_FINISH, ev.JOB_FAILED)
            ]
            assert len(starts) == len(closes) == len(executions), mode

    def test_computed_counts_match_the_events(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            computed = [
                e for e in trace.executions()
                if e.outcome == "computed" and e.index is not None
            ]
            # Grid-point executions (shared artifacts carry no index).
            assert len(computed) == run.stats.computed, mode

    def test_critical_path_is_dependency_consistent_and_bounded(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            chain = critical_path(trace)
            assert chain, mode
            deps_map = trace.dependency_map()
            for upstream, downstream in zip(chain, chain[1:]):
                assert upstream.key in deps_map.get(downstream.key, ()), mode
            total = sum(e.duration_s for e in chain)
            assert total <= trace.elapsed_s() + 1e-6, mode

    def test_cache_hit_counter_matches_store_skips(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            assert trace.counters()[ev.COUNTER_CACHE_HITS] == run.stats.cached, mode


class TestCacheCounters:
    def test_full_cache_hit_rerun_counts_every_skip(self, tmp_path, weights_cache):
        sweep = tiny_mc_sweep("cache-count")
        store = ResultStore(tmp_path)
        first = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        assert first.stats.computed == first.stats.total
        second = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        assert second.stats.cached == second.stats.total
        trace = load_run(second.telemetry_dir)
        assert trace.counters()[ev.COUNTER_CACHE_HITS] == second.stats.total
        assert len(trace.cached_keys()) == second.stats.total
        assert trace.executions() == []  # nothing ran
        summary = summarize(trace)
        assert summary["cache"]["hits"] == second.stats.total
        assert summary["cache"]["hit_rate"] == pytest.approx(1.0)


class TestFailureEvents:
    def test_injected_failure_marks_dependents_upstream_failed(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("fail-trace")
        # Index 0 is the zero-noise evaluate — the shared clean reference
        # of both Monte Carlo jobs.
        run = run_sweep(
            sweep, ResultStore(tmp_path), weights_cache_dir=weights_cache,
            inject_failures=[0], max_failures=1, trace=True,
        )
        assert run.stats.failed == 3  # the root + two dependents
        trace = load_run(run.telemetry_dir)
        assert len(trace.upstream_failed_keys()) == 2
        finishes = trace.select(ev.SWEEP_FINISH)
        assert len(finishes) == 1 and finishes[0]["failed"] == 3
        assert trace.counters()[ev.COUNTER_JOBS_FAILED] == 3


# --------------------------------------------------------------------- #
# CLI: verbosity flags
# --------------------------------------------------------------------- #
class TestCliVerbosity:
    @pytest.fixture(autouse=True)
    def _restore_level(self):
        yield
        set_verbosity(logging.WARNING)

    def test_verbosity_to_level_mapping(self):
        assert verbosity_to_level(0, False) == logging.WARNING
        assert verbosity_to_level(1, False) == logging.INFO
        assert verbosity_to_level(2, False) == logging.DEBUG
        assert verbosity_to_level(3, False) == logging.DEBUG
        assert verbosity_to_level(2, True) == logging.ERROR  # -q wins

    @pytest.mark.parametrize("argv,level", [
        (["-v", "list"], logging.INFO),       # flag before the subcommand
        (["list", "-v"], logging.INFO),       # flag after the subcommand
        (["list", "-vv"], logging.DEBUG),
        (["list", "-q"], logging.ERROR),
        (["list"], logging.WARNING),
    ])
    def test_flags_set_the_library_level(self, argv, level, capsys):
        assert cli_main(argv) == 0
        assert logging.getLogger("repro").level == level
        capsys.readouterr()


# --------------------------------------------------------------------- #
# CLI: show timing + trace subcommands
# --------------------------------------------------------------------- #
class TestCliTelemetry:
    @pytest.fixture(scope="class")
    def traced_store(self, tmp_path_factory, weights_cache):
        runner_module.clear_runner_memos()
        tmp_path = tmp_path_factory.mktemp("cli-telemetry")
        sweep = tiny_mc_sweep("cli-sweep")
        store = ResultStore(tmp_path / "store")
        run = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(sweep.to_dict()))
        return {"store": store, "run": run, "spec_path": spec_path}

    def test_show_prints_job_timing_and_sweep_telemetry(self, traced_store, capsys):
        assert cli_main([
            "show", str(traced_store["spec_path"]),
            "--store", str(traced_store["store"].root),
        ]) == 0
        out = capsys.readouterr().out
        stored_lines = [l for l in out.splitlines() if " stored " in l]
        assert stored_lines and all("s @ " in l for l in stored_lines)
        assert "telemetry (" in out and "elapsed" in out
        assert "wave 1:" in out

    def test_show_degrades_without_telemetry(self, traced_store, tmp_path, capsys):
        assert cli_main([
            "show", str(traced_store["spec_path"]), "--store", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry: none recorded" in out

    def test_trace_list_names_the_run(self, traced_store, capsys):
        assert cli_main(["trace", "list",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        run_id = str(traced_store["run"].telemetry_dir).rsplit("/", 1)[-1]
        assert run_id in out and "sweep=cli-sweep" in out

    def test_trace_summary_reports_jobs_and_stragglers(self, traced_store, capsys):
        assert cli_main(["trace", "summary",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        run = traced_store["run"]
        assert f"jobs executed: {run.stats.computed} " in out
        assert f"({run.stats.computed} ok, 0 failed)" in out
        assert "stragglers: 0" in out
        assert "critical path:" in out

    def test_trace_critical_path_prints_the_chain(self, traced_store, capsys):
        assert cli_main(["trace", "critical-path",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        # evaluate (clean reference) strictly precedes its monte_carlo user.
        lines = [l for l in out.splitlines() if ". " in l and "wave" in l]
        kinds = [l.split()[2] for l in lines]
        assert "monte_carlo" in kinds
        assert kinds.index("evaluate") < kinds.index("monte_carlo")

    def test_trace_show_filters_and_limits(self, traced_store, capsys):
        assert cli_main([
            "trace", "show", "--store", str(traced_store["store"].root),
            "--event", "job_finish", "--limit", "2",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert all(json.loads(l)["event"] == "job_finish" for l in lines)

    def test_trace_summary_without_telemetry_exits_with_hint(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no telemetry recorded"):
            cli_main(["trace", "summary", "--store", str(tmp_path)])
        capsys.readouterr()
