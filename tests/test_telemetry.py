"""Tests of the sweep-telemetry subsystem (tracing, analysis, CLI).

The contracts pinned here:

* Telemetry is strictly out-of-band: serial, process-pool, sharded and
  resumed runs with ``trace`` on produce aggregate records and store
  contents byte-identical to an untraced serial run.
* The merged event stream accounts for every executed job exactly once
  (one start + one finish pair per content address), and cache-hit
  counters match the store's skip count.
* ``critical_path`` returns a dependency-consistent chain (each job
  waited on its predecessor) whose summed duration never exceeds the
  sweep's elapsed time.
* Straggler detection is relative *and* absolute, so seconds-fast
  balanced runs never flag noise.
* The CLI wires ``-v/-vv/-q`` to ``set_verbosity`` on every subcommand,
  ``show`` surfaces per-job timing metadata and sweep-level telemetry,
  and the ``trace`` subcommands render the recorded runs.
* Resource metrics ride along out-of-band: every ``job_finish`` event and
  meta sidecar carries ``cpu_s``/``max_rss_kb``, every executor process
  emits ``resource_sample`` events, and none of it perturbs artifacts.
* The live tailer follows a *growing* run directory without locks —
  partial last lines are held back, streams appearing mid-watch are
  picked up, cross-stream ``t_mono`` reordering can't regress a status —
  and a watch on a live two-shard sweep reaches completion with the same
  job counts the offline summary reports.
* An abnormal unwind (first-failure abort, exceeded failure budget)
  records a terminal ``sweep_abort`` event before executor teardown.
* Perf history appends one record per traced sweep and ``trace regress``
  flags only changes that exceed a relative *and* an absolute gate.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import (
    NoiseScenario,
    ResultStore,
    SweepSpec,
    WorkloadSpec,
    build_preset,
    execute_job,
    job_key,
    run_sweep,
)
from repro.experiments import runner as runner_module
from repro.experiments.cli import main as cli_main
from repro.telemetry import (
    NULL_TRACER,
    JsonlTracer,
    RunTailer,
    StreamTailer,
    SweepState,
    TraceRun,
    append_history,
    compare_records,
    critical_path,
    find_baseline,
    find_stragglers,
    load_events,
    load_history,
    load_run,
    merge_events,
    render,
    resolve_tracer,
    resource_summary,
    resources_supported,
    run_directory,
    sample_resources,
    summarize,
    watch,
    wave_stats,
)
from repro.telemetry import events as ev
from repro.telemetry import resources as resources_module
from repro.utils.logging import set_verbosity, verbosity_to_level

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)

NOISE = NoiseScenario(
    models=[{"model": "gaussian_read_noise", "sigma": 0.5}], label={"sigma": 0.5},
)


def tiny_mc_sweep(name: str = "telemetry-sweep") -> SweepSpec:
    """One zero-noise evaluate (the shared clean reference) + two MC jobs."""
    return SweepSpec(
        name=name,
        kind="monte_carlo",
        workloads=[TINY],
        noises=[NoiseScenario(label={"sigma": 0.0}), NOISE],
        mc_seeds=[0, 1],
        trials=2,
        images=4,
        batch_size=4,
    )


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


def record_bytes(run) -> bytes:
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


def store_listing(store: ResultStore):
    """(name, bytes) of every artifact — the store-equality oracle."""
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.glob("*.json"))
    }


def write_stream(directory, stream, events):
    """Hand-craft one JSONL stream file for analysis-layer unit tests."""
    directory.mkdir(parents=True, exist_ok=True)
    lines = []
    for seq, event in enumerate(events, start=1):
        lines.append(json.dumps({
            "run_id": "synthetic", "stream": stream, "pid": 1, "seq": seq,
            "t_wall": 0.0, **event,
        }))
    (directory / f"events-{stream}.jsonl").write_text("\n".join(lines) + "\n")


def job_pair(key, kind, start, end, stream=None, wave=1, deps=()):
    """A start/finish event pair for one synthetic job execution."""
    return [
        {"event": ev.JOB_START, "key": key, "kind": kind, "wave": wave,
         "deps": list(deps), "t_mono": start},
        {"event": ev.JOB_FINISH, "key": key, "kind": kind, "wave": wave,
         "duration_s": end - start, "t_mono": end},
    ]


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_emit_writes_enveloped_jsonl_lines(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "run", run_id="r1", stream="s1")
        tracer.emit("job_start", key="k", kind="evaluate", skipped=None)
        tracer.emit("job_finish", key="k", duration_s=0.5)
        tracer.close()
        events = load_events(tmp_path / "run")
        assert [e["event"] for e in events] == ["job_start", "job_finish"]
        first = events[0]
        assert first["run_id"] == "r1" and first["stream"] == "s1"
        assert first["seq"] == 1 and events[1]["seq"] == 2
        assert "t_mono" in first and "t_wall" in first and "pid" in first
        assert "skipped" not in first  # None-valued fields are dropped

    def test_span_emits_start_and_finish_with_duration(self, tmp_path):
        tracer = JsonlTracer(tmp_path, stream="s")
        with tracer.span("prewarm"):
            pass
        tracer.close()
        events = load_events(tmp_path)
        assert [e["event"] for e in events] == ["prewarm_start", "prewarm_finish"]
        assert events[1]["duration_s"] >= 0.0

    def test_null_tracer_is_disabled_and_writes_nothing(self, tmp_path):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit("job_start", key="k")
        NULL_TRACER.counter("c", 1)
        with NULL_TRACER.span("x"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_resolve_tracer_mapping(self, tmp_path):
        assert resolve_tracer(None, tmp_path) is NULL_TRACER
        assert resolve_tracer(False, tmp_path) is NULL_TRACER
        own = JsonlTracer(tmp_path / "mine")
        assert resolve_tracer(own, tmp_path) is own
        fresh = resolve_tracer(True, tmp_path)
        assert fresh.enabled
        assert fresh.directory.parent == tmp_path / "telemetry"
        named = resolve_tracer("run-42", tmp_path)
        assert named.directory == tmp_path / "telemetry" / "run-42"
        assert named.run_id == "run-42"

    def test_load_events_merges_streams_and_skips_torn_tail(self, tmp_path):
        write_stream(tmp_path, "a", [{"event": "x", "t_mono": 2.0}])
        write_stream(tmp_path, "b", [{"event": "y", "t_mono": 1.0}])
        with open(tmp_path / "events-b.jsonl", "a") as handle:
            handle.write('{"event": "torn", "t_mo')  # killed mid-write
        events = load_events(tmp_path)
        assert [e["event"] for e in events] == ["y", "x"]  # t_mono order

    def test_merge_events_writes_single_ordered_stream(self, tmp_path):
        write_stream(tmp_path, "a", [{"event": "x", "t_mono": 2.0}])
        write_stream(tmp_path, "b", [{"event": "y", "t_mono": 1.0}])
        merged = merge_events(tmp_path)
        lines = merged.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["y", "x"]


# --------------------------------------------------------------------- #
# Analysis (synthetic streams)
# --------------------------------------------------------------------- #
class TestAnalysis:
    def test_critical_path_follows_the_longest_dependency_chain(self, tmp_path):
        events = []
        events += job_pair("k1", "distribution", 0.0, 5.0, wave=1)
        events += job_pair("k2", "evaluate", 5.0, 6.0, wave=2, deps=["k1"])
        events += job_pair("k3", "evaluate", 0.0, 3.0, wave=1)  # independent
        write_stream(tmp_path, "s", events)
        chain = critical_path(TraceRun(tmp_path))
        assert [e.key for e in chain] == ["k1", "k2"]
        assert sum(e.duration_s for e in chain) == pytest.approx(6.0)

    def test_critical_path_ignores_cached_dependencies(self, tmp_path):
        # k2 depends on k9, which was a cache hit: it bounded nothing.
        events = [{"event": ev.JOB_CACHED, "key": "k9", "kind": "evaluate",
                   "t_mono": 0.0}]
        events += job_pair("k2", "monte_carlo", 0.0, 2.0, deps=["k9"])
        write_stream(tmp_path, "s", events)
        chain = critical_path(TraceRun(tmp_path))
        assert [e.key for e in chain] == ["k2"]

    def test_wave_stats_utilization(self, tmp_path):
        # Two streams, one wave spanning 10s: A busy 10, B busy 4.
        write_stream(tmp_path, "a", job_pair("a1", "evaluate", 0.0, 10.0))
        write_stream(tmp_path, "b", job_pair("b1", "evaluate", 0.0, 4.0))
        (stats,) = wave_stats(TraceRun(tmp_path))
        assert stats.jobs == 2 and stats.streams == 2
        assert stats.span_s == pytest.approx(10.0)
        assert stats.utilization == pytest.approx(14.0 / 20.0)

    def test_straggler_detection_is_relative_and_absolute(self, tmp_path):
        write_stream(tmp_path, "a", job_pair("a1", "monte_carlo", 0.0, 10.0))
        write_stream(tmp_path, "b", job_pair("b1", "monte_carlo", 0.0, 1.0))
        write_stream(tmp_path, "c", job_pair("c1", "monte_carlo", 0.0, 1.0))
        run = TraceRun(tmp_path)
        (straggler,) = find_stragglers(run)
        assert straggler.stream == "a"
        assert straggler.busy_s == pytest.approx(10.0)
        # Same shape scaled to sub-second: relative gap alone must not flag.
        fast = tmp_path / "fast"
        write_stream(fast, "a", job_pair("a1", "monte_carlo", 0.0, 0.3))
        write_stream(fast, "b", job_pair("b1", "monte_carlo", 0.0, 0.1))
        write_stream(fast, "c", job_pair("c1", "monte_carlo", 0.0, 0.1))
        assert find_stragglers(TraceRun(fast)) == []

    def test_duplicate_executions_are_surfaced_not_collapsed(self, tmp_path):
        # Two racing shards honestly both computed the shared sibling.
        write_stream(tmp_path, "a", job_pair("dup", "evaluate", 0.0, 1.0))
        write_stream(tmp_path, "b", job_pair("dup", "evaluate", 0.5, 1.5))
        run = TraceRun(tmp_path)
        assert len(run.executions()) == 2
        assert run.duplicate_keys() == ["dup"]
        assert summarize(run)["duplicates"] == ["dup"]

    def test_counters_keep_the_latest_sample(self, tmp_path):
        write_stream(tmp_path, "s", [
            {"event": ev.COUNTER, "name": "c", "value": 1, "t_mono": 0.0},
            {"event": ev.COUNTER, "name": "c", "value": 3, "t_mono": 1.0},
        ])
        assert TraceRun(tmp_path).counters() == {"c": 3.0}


# --------------------------------------------------------------------- #
# Execution metadata sidecar (satellite: promoted per-job timing)
# --------------------------------------------------------------------- #
class TestMetaSidecar:
    def test_execute_job_records_duration_and_worker(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        meta = store.load_meta(key)
        assert meta["duration_s"] > 0.0
        assert meta["worker"].startswith("pid-")
        assert meta["kind"] == job.kind

    def test_meta_lives_outside_the_artifact_namespace(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        assert list(store.keys()) == [key]  # meta/ never pollutes the root
        assert store.meta_path(key).parent.name == "meta"

    def test_delete_drops_the_sidecar_too(self, tmp_path, weights_cache):
        job = tiny_mc_sweep().expand()[0]
        store = ResultStore(tmp_path)
        key = execute_job(job, store, weights_cache)
        store.delete(key)
        assert store.load_meta(key) == {}
        assert not store.meta_path(key).exists()


# --------------------------------------------------------------------- #
# Traced execution across every executor
# --------------------------------------------------------------------- #
def _traced_runs(experiment, tmp_path, weights_cache):
    """Serial/process/sharded/resumed runs of one sweep, all traced."""
    sweep = experiment.sweep
    runs = {}

    serial = run_sweep(
        sweep, ResultStore(tmp_path / "serial"),
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )
    runs["serial"] = serial

    runner_module.clear_runner_memos()
    runs["process"] = run_sweep(
        sweep, ResultStore(tmp_path / "process"), jobs=2, executor="process",
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )

    runner_module.clear_runner_memos()
    runs["sharded"] = run_sweep(
        sweep, ResultStore(tmp_path / "sharded"), executor="sharded", shards=2,
        weights_cache_dir=weights_cache, experiment=experiment, trace=True,
    )

    # Resume: compute the first half out-of-band, then the traced run.
    runner_module.clear_runner_memos()
    resumed_store = ResultStore(tmp_path / "resumed")
    jobs = sweep.expand()
    for job in jobs[: len(jobs) // 2]:
        execute_job(job, resumed_store, weights_cache)
    runner_module.clear_runner_memos()
    runs["resumed"] = run_sweep(
        sweep, resumed_store, weights_cache_dir=weights_cache,
        experiment=experiment, trace=True,
    )
    return runs


class TestTracedExecutors:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory, weights_cache):
        runner_module.clear_runner_memos()
        tmp_path = tmp_path_factory.mktemp("traced-modes")
        experiment = build_preset(
            "robustness-noise", smoke=True, images=4, trials=2,
        )
        runner_module.clear_runner_memos()
        untraced = run_sweep(
            experiment.sweep, ResultStore(tmp_path / "reference"),
            weights_cache_dir=weights_cache, experiment=experiment,
        )
        return {
            "tmp_path": tmp_path,
            "reference": untraced,
            "runs": _traced_runs(experiment, tmp_path, weights_cache),
        }

    def test_traced_runs_are_byte_identical_to_untraced(self, traced):
        tmp_path = traced["tmp_path"]
        reference_record = record_bytes(traced["reference"])
        reference_store = store_listing(ResultStore(tmp_path / "reference"))
        for mode, run in traced["runs"].items():
            assert record_bytes(run) == reference_record, f"{mode} differs"
            assert store_listing(ResultStore(tmp_path / mode)) == reference_store, (
                f"{mode} store contents differ"
            )

    def test_every_mode_records_a_telemetry_run(self, traced):
        for mode, run in traced["runs"].items():
            assert run.telemetry_dir is not None, mode
            trace = load_run(run.telemetry_dir)
            assert trace.events, mode
            assert trace.manifest.get("sweep") == run.sweep.name

    def test_merged_stream_accounts_for_every_executed_job_exactly_once(
        self, traced
    ):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            executions = trace.executions()
            assert all(e.closed for e in executions), mode
            assert trace.duplicate_keys() == [], mode
            executed_keys = {e.key for e in executions}
            cached_keys = set(trace.cached_keys())
            assert len(executions) + len(cached_keys) >= run.stats.total, mode
            assert executed_keys.isdisjoint(cached_keys), mode
            # The merged single-file stream tells the same story.
            merged = (trace.directory / "merged.jsonl").read_text().splitlines()
            merged_events = [json.loads(line) for line in merged]
            starts = [e for e in merged_events if e["event"] == ev.JOB_START]
            closes = [
                e for e in merged_events
                if e["event"] in (ev.JOB_FINISH, ev.JOB_FAILED)
            ]
            assert len(starts) == len(closes) == len(executions), mode

    def test_computed_counts_match_the_events(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            computed = [
                e for e in trace.executions()
                if e.outcome == "computed" and e.index is not None
            ]
            # Grid-point executions (shared artifacts carry no index).
            assert len(computed) == run.stats.computed, mode

    def test_critical_path_is_dependency_consistent_and_bounded(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            chain = critical_path(trace)
            assert chain, mode
            deps_map = trace.dependency_map()
            for upstream, downstream in zip(chain, chain[1:]):
                assert upstream.key in deps_map.get(downstream.key, ()), mode
            total = sum(e.duration_s for e in chain)
            assert total <= trace.elapsed_s() + 1e-6, mode

    def test_cache_hit_counter_matches_store_skips(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            assert trace.counters()[ev.COUNTER_CACHE_HITS] == run.stats.cached, mode

    @pytest.mark.skipif(not resources_supported(),
                        reason="no resource module on this platform")
    def test_every_executor_process_emits_resource_samples(self, traced):
        for mode, run in traced["runs"].items():
            trace = load_run(run.telemetry_dir)
            samples = trace.select(ev.RESOURCE_SAMPLE)
            assert samples, mode
            assert all(s["max_rss_kb"] > 0 for s in samples), mode
            if mode in ("process", "sharded"):
                # The parent samples, and so does at least one worker /
                # shard subprocess — distinct streams prove it.
                assert len({s["stream"] for s in samples}) > 1, mode
            summary = resource_summary(trace)
            assert summary["samples"] == len(samples), mode
            assert summary["peak_rss_kb"] > 0, mode


class TestCacheCounters:
    def test_full_cache_hit_rerun_counts_every_skip(self, tmp_path, weights_cache):
        sweep = tiny_mc_sweep("cache-count")
        store = ResultStore(tmp_path)
        first = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        assert first.stats.computed == first.stats.total
        second = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        assert second.stats.cached == second.stats.total
        trace = load_run(second.telemetry_dir)
        assert trace.counters()[ev.COUNTER_CACHE_HITS] == second.stats.total
        assert len(trace.cached_keys()) == second.stats.total
        assert trace.executions() == []  # nothing ran
        summary = summarize(trace)
        assert summary["cache"]["hits"] == second.stats.total
        assert summary["cache"]["hit_rate"] == pytest.approx(1.0)


class TestFailureEvents:
    def test_injected_failure_marks_dependents_upstream_failed(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("fail-trace")
        # Index 0 is the zero-noise evaluate — the shared clean reference
        # of both Monte Carlo jobs.
        run = run_sweep(
            sweep, ResultStore(tmp_path), weights_cache_dir=weights_cache,
            inject_failures=[0], max_failures=1, trace=True,
        )
        assert run.stats.failed == 3  # the root + two dependents
        trace = load_run(run.telemetry_dir)
        assert len(trace.upstream_failed_keys()) == 2
        finishes = trace.select(ev.SWEEP_FINISH)
        assert len(finishes) == 1 and finishes[0]["failed"] == 3
        assert trace.counters()[ev.COUNTER_JOBS_FAILED] == 3


# --------------------------------------------------------------------- #
# CLI: verbosity flags
# --------------------------------------------------------------------- #
class TestCliVerbosity:
    @pytest.fixture(autouse=True)
    def _restore_level(self):
        yield
        set_verbosity(logging.WARNING)

    def test_verbosity_to_level_mapping(self):
        assert verbosity_to_level(0, False) == logging.WARNING
        assert verbosity_to_level(1, False) == logging.INFO
        assert verbosity_to_level(2, False) == logging.DEBUG
        assert verbosity_to_level(3, False) == logging.DEBUG
        assert verbosity_to_level(2, True) == logging.ERROR  # -q wins

    @pytest.mark.parametrize("argv,level", [
        (["-v", "list"], logging.INFO),       # flag before the subcommand
        (["list", "-v"], logging.INFO),       # flag after the subcommand
        (["list", "-vv"], logging.DEBUG),
        (["list", "-q"], logging.ERROR),
        (["list"], logging.WARNING),
    ])
    def test_flags_set_the_library_level(self, argv, level, capsys):
        assert cli_main(argv) == 0
        assert logging.getLogger("repro").level == level
        capsys.readouterr()


# --------------------------------------------------------------------- #
# CLI: show timing + trace subcommands
# --------------------------------------------------------------------- #
class TestCliTelemetry:
    @pytest.fixture(scope="class")
    def traced_store(self, tmp_path_factory, weights_cache):
        runner_module.clear_runner_memos()
        tmp_path = tmp_path_factory.mktemp("cli-telemetry")
        sweep = tiny_mc_sweep("cli-sweep")
        store = ResultStore(tmp_path / "store")
        run = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(sweep.to_dict()))
        return {"store": store, "run": run, "spec_path": spec_path}

    def test_show_prints_job_timing_and_sweep_telemetry(self, traced_store, capsys):
        assert cli_main([
            "show", str(traced_store["spec_path"]),
            "--store", str(traced_store["store"].root),
        ]) == 0
        out = capsys.readouterr().out
        stored_lines = [l for l in out.splitlines() if " stored " in l]
        assert stored_lines and all("s @ " in l for l in stored_lines)
        assert "telemetry (" in out and "elapsed" in out
        assert "wave 1:" in out

    def test_show_degrades_without_telemetry(self, traced_store, tmp_path, capsys):
        assert cli_main([
            "show", str(traced_store["spec_path"]), "--store", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry: none recorded" in out

    def test_trace_list_names_the_run(self, traced_store, capsys):
        assert cli_main(["trace", "list",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        run_id = str(traced_store["run"].telemetry_dir).rsplit("/", 1)[-1]
        assert run_id in out and "sweep=cli-sweep" in out

    def test_trace_summary_reports_jobs_and_stragglers(self, traced_store, capsys):
        assert cli_main(["trace", "summary",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        run = traced_store["run"]
        assert f"jobs executed: {run.stats.computed} " in out
        assert f"({run.stats.computed} ok, 0 failed)" in out
        assert "stragglers: 0" in out
        assert "critical path:" in out

    def test_trace_critical_path_prints_the_chain(self, traced_store, capsys):
        assert cli_main(["trace", "critical-path",
                         "--store", str(traced_store["store"].root)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        # evaluate (clean reference) strictly precedes its monte_carlo user.
        lines = [l for l in out.splitlines() if ". " in l and "wave" in l]
        kinds = [l.split()[2] for l in lines]
        assert "monte_carlo" in kinds
        assert kinds.index("evaluate") < kinds.index("monte_carlo")

    def test_trace_show_filters_and_limits(self, traced_store, capsys):
        assert cli_main([
            "trace", "show", "--store", str(traced_store["store"].root),
            "--event", "job_finish", "--limit", "2",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert all(json.loads(l)["event"] == "job_finish" for l in lines)

    def test_trace_summary_without_telemetry_exits_with_hint(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no telemetry recorded"):
            cli_main(["trace", "summary", "--store", str(tmp_path)])
        capsys.readouterr()

    def test_trace_summary_json_is_machine_readable(self, traced_store, capsys):
        assert cli_main(["trace", "summary", "--json",
                         "--store", str(traced_store["store"].root)]) == 0
        summary = json.loads(capsys.readouterr().out)
        run = traced_store["run"]
        assert summary["sweep"] == "cli-sweep"
        assert summary["executed"] == summary["ok"] == run.stats.computed
        assert summary["failed"] == 0
        assert summary["cache"]["hits"] == run.stats.cached
        assert summary["critical_path_s"] <= summary["elapsed_s"] + 1e-6
        # The chain is plain dicts — the same shape perf history ingests.
        assert all(isinstance(job, dict) for job in summary["critical_path"])

    def test_trace_critical_path_json(self, traced_store, capsys):
        assert cli_main(["trace", "critical-path", "--json",
                         "--store", str(traced_store["store"].root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        kinds = [job["kind"] for job in payload["jobs"]]
        assert "monte_carlo" in kinds
        assert kinds.index("evaluate") < kinds.index("monte_carlo")
        assert payload["critical_path_s"] <= payload["elapsed_s"] + 1e-6

    def test_trace_watch_on_a_finished_run_exits_zero(self, traced_store, capsys):
        run_id = Path(traced_store["run"].telemetry_dir).name
        assert cli_main([
            "trace", "watch", "--store", str(traced_store["store"].root),
            "--run", run_id, "--ascii", "--interval", "0.05", "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep finished" in out
        assert all(ord(char) < 128 for char in out)  # --ascii means ASCII


# --------------------------------------------------------------------- #
# Resource metrics (per-job probes + per-process samplers)
# --------------------------------------------------------------------- #
needs_resources = pytest.mark.skipif(
    not resources_supported(), reason="no resource module on this platform"
)


class TestResourceMetrics:
    @needs_resources
    def test_sample_reports_cpu_and_peak_rss(self):
        sample = sample_resources()
        assert sample["max_rss_kb"] > 0
        assert sample["cpu_user_s"] >= 0.0 and sample["cpu_system_s"] >= 0.0

    @needs_resources
    def test_probe_reports_a_per_job_cpu_delta(self):
        probe = resources_module.JobResourceProbe()
        deadline = time.process_time() + 0.05
        while time.process_time() < deadline:
            pass
        fields = probe.finish()
        assert fields["cpu_s"] >= 0.04
        assert fields["max_rss_kb"] > 0

    def test_unsupported_platform_degrades_to_noops(self, tmp_path, monkeypatch):
        monkeypatch.setattr(resources_module, "_resource", None)
        assert not resources_module.resources_supported()
        assert resources_module.sample_resources() == {}
        assert resources_module.JobResourceProbe().finish() == {}
        tracer = JsonlTracer(tmp_path / "run")
        sampler = resources_module.ResourceSampler(tracer).start()
        sampler.stop()
        tracer.close()
        assert load_events(tmp_path / "run") == []  # dormant: nothing emitted

    @needs_resources
    def test_sampler_emits_an_immediate_and_a_final_sample(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "run", stream="main")
        sampler = resources_module.ResourceSampler(tracer, interval_s=30.0)
        sampler.start()
        sampler.stop()
        tracer.close()
        events = load_events(tmp_path / "run")
        assert [e["event"] for e in events] == [ev.RESOURCE_SAMPLE] * 2
        assert all(e["max_rss_kb"] > 0 for e in events)

    @needs_resources
    def test_traced_run_attaches_resources_everywhere(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("resource-sweep")
        store = ResultStore(tmp_path)
        run = run_sweep(sweep, store, weights_cache_dir=weights_cache, trace=True)
        trace = load_run(run.telemetry_dir)
        finishes = trace.select(ev.JOB_FINISH)
        assert finishes
        for event in finishes:
            assert event["cpu_s"] >= 0.0
            assert event["max_rss_kb"] > 0
        # The meta sidecar mirrors the event fields for untraced consumers.
        for key in store.keys():
            meta = store.load_meta(key)
            assert meta["cpu_s"] >= 0.0 and meta["max_rss_kb"] > 0
        summary = summarize(trace)
        assert summary["resources"]["peak_rss_kb"] >= max(
            e["max_rss_kb"] for e in finishes
        )
        assert summary["resources"]["cpu_total_s"] > 0.0


# --------------------------------------------------------------------- #
# Live tailing (growing files, torn tails, appearing streams)
# --------------------------------------------------------------------- #
class TestStreamTailer:
    def test_partial_final_line_is_held_until_complete(self, tmp_path):
        path = tmp_path / "events-s.jsonl"
        tailer = StreamTailer(path)
        assert tailer.poll() == []  # file not created yet
        with open(path, "wb") as handle:
            handle.write(b'{"event": "a"}\n{"event": "b"')
        assert [e["event"] for e in tailer.poll()] == ["a"]
        assert tailer.poll() == []  # still torn: nothing new
        with open(path, "ab") as handle:
            handle.write(b"}\n")
        assert [e["event"] for e in tailer.poll()] == ["b"]

    def test_unparseable_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events-s.jsonl"
        path.write_bytes(b'garbage\n{"event": "ok"}\n')
        assert [e["event"] for e in StreamTailer(path).poll()] == ["ok"]


class TestRunTailer:
    def test_streams_appearing_mid_watch_are_picked_up(self, tmp_path):
        directory = tmp_path / "run"
        tailer = RunTailer(directory)
        assert tailer.poll() == []  # directory not materialised yet
        write_stream(directory, "a", [{"event": "x", "t_mono": 1.0}])
        assert [e["event"] for e in tailer.poll()] == ["x"]
        # A new stream appears and the old one grows: one batch, ordered
        # by t_mono across both.
        write_stream(directory, "b", [{"event": "y", "t_mono": 0.5}])
        with open(directory / "events-a.jsonl", "a") as handle:
            handle.write(json.dumps(
                {"event": "z", "stream": "a", "seq": 2, "t_mono": 2.0}
            ) + "\n")
        assert [e["event"] for e in tailer.poll()] == ["y", "z"]

    def test_graph_is_refreshed_when_it_appears(self, tmp_path):
        directory = tmp_path / "run"
        directory.mkdir()
        tailer = RunTailer(directory)
        tailer.poll()
        assert tailer.graph == {}
        (directory / "graph.json").write_text(json.dumps(
            {"k1": {"kind": "evaluate", "index": 0, "deps": []}}
        ))
        tailer.poll()
        assert tailer.graph["k1"]["kind"] == "evaluate"


class TestSweepState:
    def _started(self, scheduled=2):
        state = SweepState()
        state.apply({"event": ev.SWEEP_START, "run_id": "r", "sweep": "s",
                     "executor": "sharded", "scheduled": scheduled,
                     "t_mono": 0.0})
        return state

    def test_out_of_order_close_beats_late_start(self):
        # Shard B's finish flushes before shard A's start of the same key
        # is observed: the status lattice must not regress to "running".
        state = self._started()
        state.apply({"event": ev.JOB_FINISH, "key": "k1", "kind": "evaluate",
                     "duration_s": 1.0, "stream": "b", "t_mono": 2.0})
        state.apply({"event": ev.JOB_START, "key": "k1", "kind": "evaluate",
                     "stream": "a", "t_mono": 1.0})
        snapshot = state.snapshot()
        assert snapshot["counts"]["ok"] == 1
        assert snapshot["counts"]["running"] == 0
        assert snapshot["running_jobs"] == []

    def test_graph_ingest_counts_unstarted_jobs_as_pending(self):
        state = self._started(scheduled=3)
        state.ingest_graph({
            "k1": {"kind": "evaluate"}, "k2": {"kind": "monte_carlo"},
            "k3": {"kind": "monte_carlo"},
        })
        state.apply({"event": ev.JOB_START, "key": "k1", "kind": "evaluate",
                     "stream": "a", "t_mono": 1.0})
        snapshot = state.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["counts"]["pending"] == 2
        assert snapshot["counts"]["running"] == 1
        assert snapshot["eta_s"] is None  # no duration observed yet

    def test_eta_uses_per_kind_means(self):
        state = self._started(scheduled=3)
        state.ingest_graph({
            "k1": {"kind": "evaluate"}, "k2": {"kind": "evaluate"},
            "k3": {"kind": "evaluate"},
        })
        state.apply({"event": ev.JOB_START, "key": "k1", "kind": "evaluate",
                     "stream": "a", "t_mono": 0.0})
        state.apply({"event": ev.JOB_FINISH, "key": "k1", "kind": "evaluate",
                     "duration_s": 2.0, "stream": "a", "t_mono": 2.0})
        # Two pending evaluates at the observed 2 s mean over one stream.
        assert state.snapshot()["eta_s"] == pytest.approx(4.0)

    def test_fully_cached_rerun_counts_cached_jobs_in_total(self):
        # `scheduled` excludes cache hits (they never enter the graph);
        # the denominator must still cover their job_cached events.
        state = self._started(scheduled=0)
        for index in range(3):
            state.apply({"event": ev.JOB_CACHED, "key": f"k{index}",
                         "kind": "evaluate", "t_mono": 1.0})
        snapshot = state.snapshot()
        assert snapshot["total"] == snapshot["done"] == 3
        assert snapshot["counts"]["cached"] == 3

    def test_abort_marks_running_jobs_and_wins_over_late_finish(self):
        state = self._started()
        state.apply({"event": ev.WAVE_START, "wave": 1, "jobs": 2,
                     "t_mono": 0.5})
        state.apply({"event": ev.JOB_START, "key": "k1", "kind": "evaluate",
                     "stream": "a", "t_mono": 1.0, "wave": 1})
        state.apply({"event": ev.SWEEP_ABORT, "reason": "KeyboardInterrupt",
                     "t_mono": 2.0})
        # The runner's cleanup still records sweep_finish after the abort.
        state.apply({"event": ev.SWEEP_FINISH, "t_mono": 2.1})
        assert state.terminal and state.outcome == "aborted"
        snapshot = state.snapshot()
        assert snapshot["counts"]["aborted"] == 1
        assert snapshot["counts"]["running"] == 0

    def test_render_ascii_mode_is_pure_ascii(self):
        state = self._started()
        state.apply({"event": ev.JOB_START, "key": "k1", "kind": "evaluate",
                     "stream": "a", "t_mono": 1.0, "wave": 1})
        state.apply({"event": ev.JOB_FINISH, "key": "k1", "kind": "evaluate",
                     "duration_s": 1.0, "stream": "a", "t_mono": 2.0})
        state.apply({"event": ev.SWEEP_FINISH, "t_mono": 2.0})
        snapshot = state.snapshot()
        text = render(snapshot)
        assert "█" in text and "sweep s" in text
        plain = render(snapshot, ascii_only=True)
        assert all(ord(char) < 128 for char in plain)
        assert "sweep finished" in plain


# --------------------------------------------------------------------- #
# Watching a live two-shard run to completion
# --------------------------------------------------------------------- #
class TestLiveWatch:
    def _launch(self, sweep, store, run_id, weights_cache):
        errors = []

        def _execute():
            try:
                run_sweep(sweep, store, weights_cache_dir=weights_cache,
                          executor="sharded", shards=2, trace=run_id)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        thread = threading.Thread(target=_execute, daemon=True)
        thread.start()
        return thread, errors

    def test_watch_follows_a_two_shard_run_to_completion(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("live-shard-sweep")
        store = ResultStore(tmp_path / "store")
        directory = run_directory(store.root, "live-run")
        thread, errors = self._launch(sweep, store, "live-run", weights_cache)
        try:
            final = None
            for snapshot in watch(directory, interval_s=0.1, timeout_s=180.0):
                final = snapshot
        finally:
            thread.join(timeout=180.0)
        assert errors == []
        assert final is not None and final["terminal"]
        assert final["outcome"] == "finished"
        # The live fold and the offline reconstruction tell one story.
        summary = summarize(load_run(directory))
        assert final["counts"]["ok"] == summary["ok"] == final["total"]
        assert final["counts"]["failed"] == summary["failed"] == 0
        assert final["counts"]["pending"] == final["counts"]["running"] == 0
        assert final["done"] == final["total"]

    def test_cli_trace_watch_matches_trace_summary_counts(
        self, tmp_path, weights_cache, capsys
    ):
        sweep = tiny_mc_sweep("cli-watch-sweep")
        store = ResultStore(tmp_path / "store")
        thread, errors = self._launch(sweep, store, "cli-watch", weights_cache)
        try:
            rc = cli_main([
                "trace", "watch", "--store", str(store.root),
                "--run", "cli-watch", "--json",
                "--interval", "0.1", "--timeout", "180",
            ])
        finally:
            thread.join(timeout=180.0)
        assert errors == [] and rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["terminal"] is True
        assert cli_main(["trace", "summary", "--json", "--store",
                         str(store.root), "--run", "cli-watch"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert snapshot["counts"]["ok"] == summary["ok"]
        assert snapshot["counts"]["failed"] == summary["failed"]
        assert snapshot["counts"]["cached"] == summary["cache"]["hits"]
        assert snapshot["done"] == summary["ok"] + summary["cache"]["hits"]


# --------------------------------------------------------------------- #
# Abnormal termination records a terminal sweep_abort
# --------------------------------------------------------------------- #
class TestSweepAbortEvents:
    def test_first_failure_abort_records_sweep_abort(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("abort-sweep")
        store = ResultStore(tmp_path)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_sweep(sweep, store, weights_cache_dir=weights_cache,
                      inject_failures=[0], trace="abort-run")
        trace = load_run(store.root / "telemetry" / "abort-run")
        (abort,) = trace.select(ev.SWEEP_ABORT)
        assert abort["reason"] == "RuntimeError"
        assert "injected failure" in abort["error"]
        # The live fold lands on "aborted" even though the runner's
        # cleanup still records a sweep_finish afterwards.
        state = SweepState()
        for event in trace.events:
            state.apply(event)
        assert state.terminal and state.outcome == "aborted"

    def test_exceeded_failure_budget_records_its_own_reason(
        self, tmp_path, weights_cache
    ):
        sweep = tiny_mc_sweep("budget-abort")
        with pytest.raises(runner_module.MaxFailuresExceeded):
            run_sweep(sweep, ResultStore(tmp_path),
                      weights_cache_dir=weights_cache,
                      inject_failures=[0], max_failures=0, trace="abort-run")
        trace = load_run(tmp_path / "telemetry" / "abort-run")
        (abort,) = trace.select(ev.SWEEP_ABORT)
        assert abort["reason"] == "MaxFailuresExceeded"


# --------------------------------------------------------------------- #
# Perf history + regression gates
# --------------------------------------------------------------------- #
class TestPerfHistory:
    def test_append_load_round_trip_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, {"run_id": "r1", "sweep": "s", "elapsed_s": 1.0})
        append_history(path, {"run_id": "r2", "sweep": "other", "elapsed_s": 2.0})
        with open(path, "a") as handle:
            handle.write('{"run_id": "torn"')  # killed mid-append
        assert [r["run_id"] for r in load_history(path)] == ["r1", "r2"]
        assert [r["run_id"] for r in load_history(path, sweep="s")] == ["r1"]
        assert load_history(tmp_path / "missing.jsonl") == []

    def test_find_baseline_variants(self):
        records = [{"run_id": "a"}, {"run_id": "b"}, {"run_id": "c"}]
        assert find_baseline(records)["run_id"] == "a"
        assert find_baseline(records, "-2")["run_id"] == "b"
        assert find_baseline(records, "c")["run_id"] == "c"
        assert find_baseline(records, "nope") is None
        assert find_baseline([], "first") is None

    def test_regression_needs_both_gates(self):
        base = {"elapsed_s": 0.2, "critical_path_s": 0.1,
                "resources": {"peak_rss_kb": 50000.0}}
        # 4.5x slower but under the absolute gate: smoke-run noise.
        noisy = {"elapsed_s": 0.9, "critical_path_s": 0.4,
                 "resources": {"peak_rss_kb": 60000.0}}
        assert compare_records(base, noisy) == []
        # 600x and +119.8 s: both timing gates trip.
        slow = dict(base, elapsed_s=120.0)
        (regression,) = compare_records(base, slow)
        assert regression.metric == "elapsed_s"
        assert regression.factor == pytest.approx(600.0)
        assert "vs baseline" in regression.describe()
        # A big absolute gap alone is not enough either.
        assert compare_records({"elapsed_s": 1000.0}, {"elapsed_s": 1200.0}) == []

    def test_rss_gate_has_its_own_thresholds(self):
        base = {"resources": {"peak_rss_kb": 100000.0}}
        bloated = {"resources": {"peak_rss_kb": 500000.0}}
        (regression,) = compare_records(base, bloated)
        assert regression.metric == "resources.peak_rss_kb"
        # 1.3x stays under the relative gate; absent metrics are skipped.
        assert compare_records(
            base, {"resources": {"peak_rss_kb": 130000.0}}
        ) == []
        assert compare_records({}, bloated) == []

    def test_traced_sweeps_append_history_records(self, tmp_path, weights_cache):
        sweep = tiny_mc_sweep("history-sweep")
        store = ResultStore(tmp_path / "store")
        path = tmp_path / "results" / "history.jsonl"
        run_sweep(sweep, store, weights_cache_dir=weights_cache,
                  trace=True, history=path)
        runner_module.clear_runner_memos()
        run_sweep(sweep, store, weights_cache_dir=weights_cache,
                  trace=True, history=path)
        first, second = load_history(path)
        assert first["sweep"] == second["sweep"] == "history-sweep"
        assert first["executor"] == "serial"
        assert first["jobs"]["executed"] == 3 and first["cache"]["hits"] == 0
        assert first["elapsed_s"] > 0.0 and first["critical_path_s"] > 0.0
        assert first["waves"] and first["waves"][0]["jobs"] >= 1
        assert "evaluate" in first["kinds"]
        if resources_supported():
            assert first["resources"]["peak_rss_kb"] > 0.0
        # The rerun is a pure cache hit and never flags a regression.
        assert second["jobs"]["executed"] == 0
        assert second["cache"]["hit_rate"] == pytest.approx(1.0)
        assert compare_records(first, second) == []


# --------------------------------------------------------------------- #
# CLI: trace history / trace regress
# --------------------------------------------------------------------- #
class TestCliHistoryRegress:
    @pytest.fixture()
    def history_path(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, {
            "run_id": "base", "sweep": "s",
            "recorded_at": "2026-08-01T00:00:00+00:00",
            "elapsed_s": 10.0, "critical_path_s": 8.0,
            "resources": {"peak_rss_kb": 100000.0},
        })
        append_history(path, {
            "run_id": "latest", "sweep": "s",
            "recorded_at": "2026-08-02T00:00:00+00:00",
            "elapsed_s": 11.0, "critical_path_s": 8.5,
            "resources": {"peak_rss_kb": 110000.0},
        })
        return path

    def test_history_renders_and_limits(self, history_path, capsys):
        assert cli_main(["trace", "history",
                         "--history", str(history_path)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out and "[base]" in out and "[latest]" in out
        assert cli_main(["trace", "history", "--history", str(history_path),
                         "--json", "--limit", "1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in records] == ["latest"]

    def test_history_is_friendly_when_empty(self, tmp_path, capsys):
        assert cli_main(["trace", "history",
                         "--history", str(tmp_path / "none.jsonl")]) == 0
        assert "no perf history" in capsys.readouterr().out

    def test_regress_passes_within_gates(self, history_path, capsys):
        assert cli_main(["trace", "regress",
                         "--history", str(history_path)]) == 0
        out = capsys.readouterr().out
        assert "no regression" in out and "baseline: base" in out

    def test_regress_exits_five_on_regression(self, history_path, capsys):
        append_history(history_path, {
            "run_id": "slow", "sweep": "s",
            "elapsed_s": 100.0, "critical_path_s": 90.0,
        })
        assert cli_main(["trace", "regress",
                         "--history", str(history_path)]) == 5
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "elapsed_s" in out and "critical_path_s" in out

    def test_regress_threshold_flags_are_wired(self, history_path, capsys):
        # The default gates pass; paranoid gates make the same pair fail.
        assert cli_main(["trace", "regress", "--history", str(history_path),
                         "--factor", "1.01", "--min-gap", "0.5"]) == 5
        capsys.readouterr()

    def test_regress_needs_two_records(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        append_history(path, {"run_id": "only", "sweep": "s", "elapsed_s": 1.0})
        assert cli_main(["trace", "regress", "--history", str(path)]) == 2
        capsys.readouterr()

    def test_regress_rejects_unknown_baseline(self, history_path, capsys):
        with pytest.raises(SystemExit, match="no history record matches"):
            cli_main(["trace", "regress", "--history", str(history_path),
                      "--baseline", "nope"])
        capsys.readouterr()


# --------------------------------------------------------------------- #
# CLI: run --progress (in-process live renderer)
# --------------------------------------------------------------------- #
class TestCliRunProgress:
    def test_run_progress_renders_and_appends_history(
        self, tmp_path, weights_cache, capsys
    ):
        sweep = tiny_mc_sweep("progress-sweep")
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(sweep.to_dict()))
        history = tmp_path / "history.jsonl"
        assert cli_main([
            "run", str(spec_path), "--store", str(tmp_path / "store"),
            "--cache-dir", weights_cache, "--out", str(tmp_path / "record.json"),
            "--progress", "--ascii", "--history", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep finished" in out
        (record,) = load_history(history)
        assert record["sweep"] == "progress-sweep"
        assert (tmp_path / "record.json").exists()
