"""Bit-identity of the batched Monte Carlo axis (tentpole of the PR).

``PimSimulator.run_monte_carlo(trial_batch=N)`` pushes a leading ``trials``
axis through the fused kernel (:meth:`MappedMVMLayer.matmul_trials`); the
contract — under the numpy array backend — is **bit-identity** with the
``trial_batch=1`` per-trial loop (the oracle): same accuracies, flip rates,
per-layer operation/region statistics, for every noise model, both engines
and any grouping of trials.  The experiments-runner coalescer builds on the
same contract to write byte-identical store artifacts.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.adc import twin_range_config
from repro.core import TRQParams
from repro.datasets import build_dataset
from repro.nn.models import build_model
from repro.nonideal.stack import NonIdealityStack
from repro.quantization import quantize_model
from repro.sim import PimSimulator

#: One recipe per registered noise model with batched ``perturb_trials``
#: coverage: static integer-domain (variation, stuck-at, drift), static
#: column-dependent (IR drop) and per-read chunk-shaped draws (gaussian).
NOISE_RECIPES = {
    "variation_quantized": [
        {"model": "conductance_variation", "sigma": 0.08, "quantize": True}
    ],
    "stuck_at": [{"model": "stuck_at_faults", "rate_on": 0.01, "rate_off": 0.01}],
    "drift": [{"model": "retention_drift", "time": 24.0, "nu": 0.06}],
    "ir_drop": [{"model": "ir_drop", "alpha": 0.04}],
    "gaussian": [{"model": "gaussian_read_noise", "sigma": 1.2}],
}

TRQ_PARAMS = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)


@pytest.fixture(scope="module")
def harness():
    """A tiny untrained-but-quantized LeNet-5 and its evaluation inputs.

    Training changes no engine arithmetic, so the bit-identity contract is
    exercised just as well without it — and the module stays fast.
    """
    dataset = build_dataset("mnist", train_size=32, test_size=8, seed=0)
    model = build_model("lenet5", preset="tiny", num_classes=dataset.num_classes, rng=0)
    model.eval()
    quantized = quantize_model(model, dataset.train.images[:16])
    simulator = PimSimulator(quantized, engine="fast")
    configs = {
        name: twin_range_config(TRQ_PARAMS) for name in simulator.layer_names()
    }
    images = dataset.test.images[:4]
    labels = dataset.test.labels[:4]
    return quantized, configs, images, labels


def mc_fingerprint(result) -> str:
    """Byte-level fingerprint of everything a MC artifact persists."""
    import dataclasses

    blob = json.dumps(
        {
            "summary": result.summary(),
            "layer_stats": {
                name: dataclasses.asdict(stats)
                for name, stats in result.layer_stats.items()
            },
        },
        sort_keys=True,
    ).encode()
    digest = hashlib.sha256(blob)
    digest.update(result.accuracies.tobytes())
    digest.update(result.flip_rates.tobytes())
    return digest.hexdigest()


def run_mc(quantized, configs, images, labels, recipe, engine, trials, trial_batch,
           clean=None):
    simulator = PimSimulator(quantized, engine=engine)
    stack = NonIdealityStack(NOISE_RECIPES[recipe], seed=5)
    return simulator.run_monte_carlo(
        images, labels, stack,
        adc_configs=configs,
        trials=trials, batch_size=4, seed=3,
        trial_batch=trial_batch, clean=clean,
    )


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("recipe", sorted(NOISE_RECIPES))
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_batched_matches_loop(self, harness, recipe, engine):
        """trials=3 through groups of 2 (one full + one ragged group)."""
        quantized, configs, images, labels = harness
        clean = PimSimulator(quantized, engine=engine).evaluate(
            images, labels, configs, batch_size=4
        )
        loop = run_mc(quantized, configs, images, labels, recipe, engine,
                      trials=3, trial_batch=1, clean=clean)
        batched = run_mc(quantized, configs, images, labels, recipe, engine,
                         trials=3, trial_batch=2, clean=clean)
        assert mc_fingerprint(loop) == mc_fingerprint(batched)

    @pytest.mark.parametrize("recipe", ["variation_quantized", "gaussian"])
    def test_full_width_group_sixteen_trials(self, harness, recipe):
        """trials=16 in one batched invocation (the benchmark's shape)."""
        quantized, configs, images, labels = harness
        loop = run_mc(quantized, configs, images, labels, recipe, "fast",
                      trials=16, trial_batch=1)
        batched = run_mc(quantized, configs, images, labels, recipe, "fast",
                         trials=16, trial_batch=16)
        assert mc_fingerprint(loop) == mc_fingerprint(batched)

    def test_uneven_groups(self, harness):
        """trials=5 in groups of 2: grouping must not leak across groups."""
        quantized, configs, images, labels = harness
        loop = run_mc(quantized, configs, images, labels, "variation_quantized",
                      "fast", trials=5, trial_batch=1)
        batched = run_mc(quantized, configs, images, labels, "variation_quantized",
                         "fast", trials=5, trial_batch=2)
        assert mc_fingerprint(loop) == mc_fingerprint(batched)

    def test_trial_batch_larger_than_trials(self, harness):
        """trial_batch > trials degrades to one group of all trials."""
        quantized, configs, images, labels = harness
        loop = run_mc(quantized, configs, images, labels, "stuck_at",
                      "fast", trials=3, trial_batch=1)
        batched = run_mc(quantized, configs, images, labels, "stuck_at",
                         "fast", trials=3, trial_batch=64)
        assert mc_fingerprint(loop) == mc_fingerprint(batched)

    def test_trial_batch_validation(self, harness):
        quantized, configs, images, labels = harness
        with pytest.raises(ValueError):
            run_mc(quantized, configs, images, labels, "stuck_at",
                   "fast", trials=2, trial_batch=0)


class TestTorchBackendTolerance:
    def test_torch_backend_within_tolerance(self, harness):
        """The optional torch backend honours the documented rtol contract.

        Auto-skips where torch is not installed (the repo never requires
        it); where present, a noisy evaluation under the torch backend must
        match the numpy reference within ``BACKEND_RTOL``.
        """
        pytest.importorskip("torch")
        from repro.backend import BACKEND_RTOL, set_backend

        quantized, configs, images, labels = harness
        stack = NonIdealityStack(NOISE_RECIPES["variation_quantized"], seed=5)
        simulator = PimSimulator(quantized, engine="fast")
        reference = simulator.evaluate(
            images, labels, configs, batch_size=4, noise=stack
        )
        set_backend("torch")
        try:
            under_torch = simulator.evaluate(
                images, labels, configs, batch_size=4, noise=stack
            )
        finally:
            set_backend("numpy")
        np.testing.assert_allclose(
            under_torch.logits, reference.logits, rtol=BACKEND_RTOL, atol=0.0
        )
