"""Tests for repro.utils: rng, validation, config serialisation, numerics."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.utils import config as config_mod
from repro.utils import numeric, rng as rng_mod, validation


# --------------------------------------------------------------------- #
# rng
# --------------------------------------------------------------------- #
class TestRng:
    def test_new_rng_default_is_deterministic(self):
        a = rng_mod.new_rng(None).integers(0, 1000, size=5)
        b = rng_mod.new_rng(None).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_new_rng_accepts_int_and_generator(self):
        gen = np.random.default_rng(3)
        assert rng_mod.new_rng(gen) is gen
        assert isinstance(rng_mod.new_rng(42), np.random.Generator)

    def test_new_rng_rejects_bad_seed(self):
        with pytest.raises(TypeError):
            rng_mod.new_rng("seed")  # type: ignore[arg-type]

    def test_derive_seed_stable_and_label_sensitive(self):
        assert rng_mod.derive_seed(1, "a", 2) == rng_mod.derive_seed(1, "a", 2)
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(1, "b")
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(2, "a")

    def test_spawn_rngs_independent(self):
        gens = rng_mod.spawn_rngs(0, 3)
        assert len(gens) == 3
        draws = [g.integers(0, 10**9) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            rng_mod.spawn_rngs(0, -1)

    def test_choice_without_replacement_bounds(self):
        gen = np.random.default_rng(0)
        picked = rng_mod.choice_without_replacement(gen, 10, 10)
        assert sorted(picked.tolist()) == list(range(10))
        with pytest.raises(ValueError):
            rng_mod.choice_without_replacement(gen, 5, 6)

    def test_stable_shuffle_preserves_items(self):
        gen = np.random.default_rng(0)
        items = list(range(20))
        shuffled = rng_mod.stable_shuffle(gen, items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input not mutated

    def test_rng_mixin(self):
        class Thing(rng_mod.RngMixin):
            def __init__(self, seed=None):
                self._init_rng(seed)

        a, b = Thing(5), Thing(5)
        assert a.rng.integers(0, 100) == b.rng.integers(0, 100)
        a.reseed(6)
        assert isinstance(a.rng, np.random.Generator)


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
class TestValidation:
    def test_check_integer_accepts_integral_values(self):
        assert validation.check_integer(3, "x") == 3
        assert validation.check_integer(3.0, "x") == 3
        assert validation.check_integer(np.int64(7), "x") == 7

    def test_check_integer_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            validation.check_integer(True, "x")
        with pytest.raises(TypeError):
            validation.check_integer(3.5, "x")

    def test_check_positive(self):
        assert validation.check_positive(2, "x") == 2
        assert validation.check_positive(0, "x", strict=False) == 0
        with pytest.raises(ValueError):
            validation.check_positive(0, "x")

    def test_check_in_range(self):
        assert validation.check_in_range(5, "x", low=0, high=10) == 5
        with pytest.raises(ValueError):
            validation.check_in_range(5, "x", low=6)
        with pytest.raises(ValueError):
            validation.check_in_range(5, "x", high=4)
        with pytest.raises(ValueError):
            validation.check_in_range(5, "x", low=5, inclusive=False)

    def test_check_probability(self):
        assert validation.check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            validation.check_probability(1.5, "p")

    def test_check_power_of_two(self):
        for value in (1, 2, 4, 128):
            assert validation.check_power_of_two(value, "x") == value
        for value in (0, 3, -4):
            with pytest.raises(ValueError):
                validation.check_power_of_two(value, "x")


# --------------------------------------------------------------------- #
# numeric
# --------------------------------------------------------------------- #
class TestNumeric:
    def test_round_half_up_at_midpoints(self):
        values = np.array([0.5, 1.5, 2.5, -0.5, -1.5])
        expected = np.array([1.0, 2.0, 3.0, 0.0, -1.0])
        assert np.array_equal(numeric.round_half_up(values), expected)

    def test_round_half_up_matches_round_away_from_midpoints(self):
        values = np.array([0.4, 0.6, 2.1, 7.9])
        assert np.array_equal(numeric.round_half_up(values), np.round(values))

    def test_ceil_log2(self):
        assert numeric.ceil_log2(1) == 0
        assert numeric.ceil_log2(2) == 1
        assert numeric.ceil_log2(129) == 8
        with pytest.raises(ValueError):
            numeric.ceil_log2(0)

    def test_ceil_div(self):
        assert numeric.ceil_div(7, 3) == 3
        assert numeric.ceil_div(6, 3) == 2
        with pytest.raises(ValueError):
            numeric.ceil_div(3, 0)

    def test_is_power_of_two(self):
        assert numeric.is_power_of_two(8)
        assert not numeric.is_power_of_two(0)
        assert not numeric.is_power_of_two(6)


# --------------------------------------------------------------------- #
# config serialisation
# --------------------------------------------------------------------- #
@dataclasses.dataclass
class _Inner:
    value: int
    weights: np.ndarray


@dataclasses.dataclass
class _Outer:
    name: str
    inner: _Inner
    ratio: float = 0.5


class TestConfigSerialisation:
    def test_asdict_recursive_handles_numpy(self):
        outer = _Outer(name="x", inner=_Inner(value=3, weights=np.arange(3)))
        data = config_mod.asdict_recursive(outer)
        assert data["inner"]["weights"] == [0, 1, 2]
        assert data["ratio"] == 0.5

    def test_asdict_recursive_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            config_mod.asdict_recursive({"a": 1})

    def test_json_round_trip(self):
        @dataclasses.dataclass
        class Simple:
            a: int
            b: float

        text = config_mod.config_to_json(Simple(a=1, b=2.5))
        restored = config_mod.config_from_json(Simple, text)
        assert restored == Simple(a=1, b=2.5)

    def test_config_from_json_rejects_unknown_fields(self):
        @dataclasses.dataclass
        class Simple:
            a: int

        with pytest.raises(TypeError):
            config_mod.config_from_json(Simple, '{"a": 1, "zzz": 2}')
        with pytest.raises(TypeError):
            config_mod.config_from_json(Simple, "[1, 2]")

    def test_save_and_load_json(self, tmp_path):
        payload = {"name": "exp", "values": np.array([1.5, 2.5])}
        path = config_mod.save_json(payload, tmp_path / "sub" / "exp.json")
        assert path.exists()
        loaded = config_mod.load_json(path)
        assert loaded["values"] == [1.5, 2.5]
