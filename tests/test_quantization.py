"""Tests for the algorithm-level quantization datapath (paper Eq. 1, PTQ)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Sequential, Conv2d, ReLU, Flatten, Linear
from repro.nn.models import build_model
from repro.quantization import (
    FakeQuantBackend,
    HistogramObserver,
    MinMaxObserver,
    QuantParams,
    QuantizationConfig,
    attach_backend,
    delta_from_range,
    detach_backend,
    find_mvm_layers,
    quantization_mse,
    quantize_model,
    quantize_uniform,
    symmetric_quant_params,
    uniform_grid,
)


# --------------------------------------------------------------------- #
# uniform quantization (Eq. 1)
# --------------------------------------------------------------------- #
class TestUniformQuantization:
    def test_grid_values_are_fixed_points(self):
        grid = uniform_grid(delta=0.5, num_bits=3)
        np.testing.assert_array_equal(quantize_uniform(grid, 0.5, 3), grid)

    def test_clamping_at_both_ends(self):
        out = quantize_uniform(np.array([-5.0, 1000.0]), delta=1.0, num_bits=4)
        np.testing.assert_array_equal(out, [0.0, 15.0])

    def test_integer_codes_mode(self):
        codes = quantize_uniform(np.array([0.4, 2.6]), delta=1.0, num_bits=4, dequantize=False)
        assert codes.dtype == np.int64
        np.testing.assert_array_equal(codes, [0, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.zeros(3), delta=0.0, num_bits=4)
        with pytest.raises(ValueError):
            quantize_uniform(np.zeros(3), delta=1.0, num_bits=0)
        with pytest.raises(ValueError):
            delta_from_range(1.0, 1.0, 4)
        assert delta_from_range(0.0, 15.0, 4) == pytest.approx(1.0)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False), min_size=1, max_size=50),
        num_bits=st.integers(min_value=1, max_value=12),
        delta=st.floats(min_value=1e-3, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_error_bounded_by_half_lsb_inside_range(self, values, num_bits, delta):
        """Quantization error never exceeds Δ/2 for values within the grid range."""
        values = np.asarray(values, dtype=np.float64)
        full_scale = ((1 << num_bits) - 1) * delta
        inside = values[values <= full_scale]
        quantized = quantize_uniform(inside, delta, num_bits)
        assert np.all(np.abs(quantized - inside) <= delta / 2 + 1e-9)

    @given(
        num_bits=st.integers(min_value=2, max_value=10),
        delta=st.floats(min_value=1e-3, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_idempotent(self, num_bits, delta):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, ((1 << num_bits) - 1) * delta, size=100)
        once = quantize_uniform(x, delta, num_bits)
        twice = quantize_uniform(once, delta, num_bits)
        np.testing.assert_allclose(once, twice)


class TestQuantParams:
    def test_signed_symmetric_round_trip(self):
        params = symmetric_quant_params(max_abs=2.0, num_bits=8, signed=True)
        codes = params.quantize(np.array([-2.0, 0.0, 2.0]))
        np.testing.assert_array_equal(codes, [-127, 0, 127])
        np.testing.assert_allclose(params.dequantize(codes), [-2.0, 0.0, 2.0], atol=1e-12)

    def test_unsigned_range(self):
        params = symmetric_quant_params(max_abs=10.0, num_bits=8, signed=False)
        assert params.qmin == 0 and params.qmax == 255
        assert params.quantize(np.array([-3.0]))[0] == 0

    def test_zero_max_abs_falls_back_to_unit_scale(self):
        params = symmetric_quant_params(0.0, 8)
        assert params.scale == 1.0
        np.testing.assert_array_equal(params.quantize(np.zeros(4)), np.zeros(4))

    def test_quantize_dequantize_error_bound(self, rng):
        params = symmetric_quant_params(max_abs=1.0, num_bits=8, signed=True)
        x = rng.uniform(-1, 1, size=1000)
        err = np.abs(params.quantize_dequantize(x) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_quantization_mse_helper(self):
        assert quantization_mse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
        with pytest.raises(ValueError):
            quantization_mse(np.zeros(3), np.zeros(4))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, num_bits=8, signed=True)
        with pytest.raises(ValueError):
            QuantizationConfig(weight_bits=0)


# --------------------------------------------------------------------- #
# observers
# --------------------------------------------------------------------- #
class TestObservers:
    def test_minmax_observer_tracks_extremes(self):
        observer = MinMaxObserver()
        observer.observe(np.array([1.0, -2.0]))
        observer.observe(np.array([5.0]))
        assert observer.min_value == -2.0 and observer.max_value == 5.0
        assert observer.max_abs == 5.0
        params = observer.quant_params()
        assert params.signed and params.scale == pytest.approx(5.0 / 127)

    def test_minmax_observer_requires_data(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().quant_params()

    def test_minmax_observer_reset(self):
        observer = MinMaxObserver()
        observer.observe(np.ones(3))
        observer.reset()
        assert observer.count == 0 and observer.min_value is None

    def test_histogram_observer_counts(self, rng):
        observer = HistogramObserver(num_bins=16)
        data = rng.exponential(2.0, size=500)
        observer.observe(data[:250])
        observer.observe(data[250:])
        counts, edges = observer.histogram
        assert counts.sum() == 500
        assert len(edges) == 17
        with pytest.raises(RuntimeError):
            _ = HistogramObserver().histogram
        with pytest.raises(ValueError):
            HistogramObserver(num_bins=1)


# --------------------------------------------------------------------- #
# PTQ pipeline and fake-quant backend
# --------------------------------------------------------------------- #
def _toy_model():
    return Sequential(
        Conv2d(1, 3, 3, padding=1, rng=0),
        ReLU(),
        Flatten(),
        Linear(3 * 8 * 8, 5, rng=0),
    )


class TestPTQ:
    def test_find_mvm_layers(self):
        model = _toy_model()
        layers = find_mvm_layers(model)
        assert [name for name, _ in layers] == ["0", "3"]

    def test_quantize_model_produces_layer_artifacts(self, rng):
        model = _toy_model()
        model.eval()
        images = rng.uniform(0, 1, size=(4, 1, 8, 8))
        quantized = quantize_model(model, images)
        assert set(quantized.layer_names) == {"0", "3"}
        conv = quantized.layer("0")
        assert conv.kind == "conv"
        assert conv.weight_codes.shape == model[0].weight.data.shape
        assert abs(conv.weight_codes).max() <= 127
        # Image inputs are non-negative -> unsigned activation grid.
        assert not conv.input_params.signed
        assert conv.output_scale == pytest.approx(
            conv.weight_params.scale * conv.input_params.scale
        )
        with pytest.raises(KeyError):
            quantized.layer("nonexistent")
        with pytest.raises(ValueError):
            quantize_model(model, images[0])

    def test_fake_quant_backend_close_to_float(self, rng):
        model = _toy_model()
        model.eval()
        images = rng.uniform(0, 1, size=(6, 1, 8, 8))
        reference = model(images)
        quantized = quantize_model(model, images[:4])
        backend = FakeQuantBackend(quantized)
        attach_backend(model, backend)
        try:
            quant_out = model(images)
        finally:
            detach_backend(model)
        assert np.all(np.isfinite(quant_out))
        # 8-bit fake quantization stays close to the float output.
        rel_err = np.abs(quant_out - reference).max() / (np.abs(reference).max() + 1e-9)
        assert rel_err < 0.1
        # After detaching, the float path is restored exactly.
        np.testing.assert_allclose(model(images), reference)

    def test_fake_quant_backend_rejects_foreign_layer(self, rng):
        model = _toy_model()
        model.eval()
        quantized = quantize_model(model, rng.uniform(0, 1, size=(2, 1, 8, 8)))
        backend = FakeQuantBackend(quantized)
        other = Linear(4, 2, rng=0)
        other.eval()
        other.compute_backend = backend
        with pytest.raises(KeyError):
            other(np.zeros((1, 4)))

    def test_quantized_inference_of_registry_model(self, rng):
        model = build_model("lenet5", preset="tiny", rng=0)
        model.eval()
        images = rng.uniform(0, 1, size=(4, 1, 28, 28))
        quantized = quantize_model(model, images)
        # Every MVM layer of the registry models must have non-negative inputs.
        assert all(not lq.input_params.signed for lq in quantized.layers.values())
