"""Tests for the ReRAM crossbar substrate: slicing, arrays, mapping, merging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import UniformAdc
from repro.crossbar import (
    CellConfig,
    CrossbarArray,
    CrossbarTopology,
    DacConfig,
    DacModel,
    MappedMVMLayer,
    ReRAMCellModel,
    bit_slice,
    num_slices,
    reconstruct_from_slices,
    reference_integer_matmul,
    shift_add_merge,
    slice_inputs_temporal,
    slice_weights_differential,
    weight_plane_factors,
    input_cycle_factors,
)
from repro.quantization import QuantizationConfig


# --------------------------------------------------------------------- #
# bit slicing
# --------------------------------------------------------------------- #
class TestSlicing:
    def test_num_slices(self):
        assert num_slices(8, 1) == 8
        assert num_slices(8, 2) == 4
        assert num_slices(7, 2) == 4
        with pytest.raises(ValueError):
            num_slices(0, 1)

    def test_bit_slice_round_trip_simple(self):
        values = np.array([[0, 1, 5], [255, 128, 37]])
        slices = bit_slice(values, total_bits=8, bits_per_slice=1)
        assert slices.shape == (8, 2, 3)
        assert set(np.unique(slices)) <= {0, 1}
        np.testing.assert_array_equal(reconstruct_from_slices(slices, 1), values)

    def test_bit_slice_rejects_invalid(self):
        with pytest.raises(ValueError):
            bit_slice(np.array([-1]), 8)
        with pytest.raises(ValueError):
            bit_slice(np.array([256]), 8)

    @given(
        bits_per_slice=st.integers(min_value=1, max_value=4),
        total_bits=st.integers(min_value=1, max_value=12),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_slice_reconstruct_identity(self, bits_per_slice, total_bits, data):
        max_value = (1 << total_bits) - 1
        values = np.array(
            data.draw(st.lists(st.integers(min_value=0, max_value=max_value), min_size=1, max_size=30))
        )
        slices = bit_slice(values, total_bits, bits_per_slice)
        np.testing.assert_array_equal(reconstruct_from_slices(slices, bits_per_slice), values)
        assert slices.max(initial=0) < (1 << bits_per_slice)

    def test_differential_weight_slicing(self):
        weights = np.array([[5, -3], [0, -127]])
        pos, neg = slice_weights_differential(weights, magnitude_bits=7)
        np.testing.assert_array_equal(reconstruct_from_slices(pos, 1), np.maximum(weights, 0))
        np.testing.assert_array_equal(reconstruct_from_slices(neg, 1), np.maximum(-weights, 0))
        with pytest.raises(ValueError):
            slice_weights_differential(np.array([[200]]), magnitude_bits=7)

    def test_temporal_input_slicing(self):
        inputs = np.array([[0, 255, 7]])
        slices = slice_inputs_temporal(inputs, activation_bits=8, dac_bits=1)
        assert slices.shape == (8, 1, 3)
        np.testing.assert_array_equal(reconstruct_from_slices(slices, 1), inputs)


# --------------------------------------------------------------------- #
# cells, DAC and a single array
# --------------------------------------------------------------------- #
class TestCellAndArray:
    def test_cell_config_validation(self):
        with pytest.raises(ValueError):
            CellConfig(g_on=1e-6, g_off=2e-6)
        with pytest.raises(ValueError):
            CellConfig(bits_per_cell=0)
        config = CellConfig()
        assert config.levels == 2 and config.is_ideal
        assert config.on_off_ratio == pytest.approx(50.0)

    def test_cell_code_to_conductance_and_back(self):
        model = ReRAMCellModel(CellConfig(bits_per_cell=2))
        codes = np.array([0, 1, 2, 3])
        conductance = model.code_to_conductance(codes)
        assert np.all(np.diff(conductance) > 0)
        np.testing.assert_allclose(
            model.effective_levels_from_conductance(conductance), codes, atol=1e-9
        )
        with pytest.raises(ValueError):
            model.code_to_conductance(np.array([4]))

    def test_cell_programming_variation_is_stochastic_but_seeded(self):
        config = CellConfig(programming_sigma=0.1)
        a = ReRAMCellModel(config, rng=1).code_to_conductance(np.ones(100, dtype=int))
        b = ReRAMCellModel(config, rng=1).code_to_conductance(np.ones(100, dtype=int))
        c = ReRAMCellModel(config, rng=2).code_to_conductance(np.ones(100, dtype=int))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.std() > 0

    def test_dac_voltage_mapping(self):
        dac = DacModel(DacConfig(resolution_bits=2, v_read=0.3))
        voltages = dac.to_voltages(np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(voltages, [0.0, 0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            dac.to_voltages(np.array([4]))

    def test_array_ideal_mode_exact_dot_product(self, rng):
        array = CrossbarArray(size=16)
        codes = rng.integers(0, 2, size=(10, 12))
        array.program(codes)
        inputs = rng.integers(0, 2, size=(5, 10))
        values = array.bitline_values(inputs)
        expected = inputs @ codes
        np.testing.assert_allclose(values[:, :12], expected)
        np.testing.assert_allclose(values[:, 12:], 0.0)
        assert 0.0 < array.utilisation <= 1.0

    def test_array_analog_mode_matches_ideal_when_no_noise(self, rng):
        codes = rng.integers(0, 2, size=(16, 16))
        inputs = rng.integers(0, 2, size=(4, 16))
        ideal = CrossbarArray(size=16, analog=False)
        ideal.program(codes)
        analog = CrossbarArray(size=16, analog=True)
        analog.program(codes)
        np.testing.assert_allclose(
            analog.bitline_values(inputs), ideal.bitline_values(inputs), atol=1e-9
        )

    def test_array_validation(self, rng):
        array = CrossbarArray(size=8)
        with pytest.raises(RuntimeError):
            _ = array.codes
        with pytest.raises(ValueError):
            array.program(np.zeros((9, 4), dtype=int))
        with pytest.raises(ValueError):
            array.program(np.zeros(4, dtype=int))
        array.program(np.ones((4, 4), dtype=int))
        with pytest.raises(ValueError):
            array.bitline_values(np.zeros((1, 9)))


# --------------------------------------------------------------------- #
# shift-and-add merge + the mapped layer
# --------------------------------------------------------------------- #
class TestMergeAndMapping:
    def test_merge_factor_helpers(self):
        np.testing.assert_array_equal(weight_plane_factors(4, 1), [1, 2, 4, 8])
        np.testing.assert_array_equal(input_cycle_factors(3, 2), [1, 4, 16])

    def test_shift_add_merge_shape_validation(self):
        with pytest.raises(ValueError):
            shift_add_merge(np.zeros((2, 3, 4, 5, 6, 7)))

    def test_reference_matmul_validation(self):
        with pytest.raises(ValueError):
            reference_integer_matmul(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_topology_ideal_resolution(self):
        assert CrossbarTopology(128, 1, 1).ideal_adc_resolution == 8
        assert CrossbarTopology(128, 2, 1).ideal_adc_resolution == 10
        with pytest.raises(ValueError):
            CrossbarTopology(crossbar_size=1)

    def test_mapped_layer_exact_reconstruction_small(self, rng):
        """Bit-sliced partials + ideal conversion + shift-add == integer matmul."""
        weights = rng.integers(-127, 128, size=(40, 6))
        inputs = rng.integers(0, 256, size=(7, 40))
        topology = CrossbarTopology(crossbar_size=16)
        layer = MappedMVMLayer(weights, QuantizationConfig(), topology)
        out, ops = layer.matmul(inputs)
        np.testing.assert_array_equal(out, reference_integer_matmul(inputs, weights))
        footprint = layer.footprint()
        assert footprint.num_segments == 3  # ceil(40 / 16)
        # Ideal conversion is charged at the topology's baseline resolution.
        assert ops == inputs.shape[0] * footprint.conversions_per_mvm * topology.ideal_adc_resolution

    def test_mapped_layer_matches_shift_add_reference(self, rng):
        """The packed plane-matrix fast path equals the explicit 6-D merge."""
        topology = CrossbarTopology(crossbar_size=8)
        config = QuantizationConfig(weight_bits=4, activation_bits=3)
        weights = rng.integers(-7, 8, size=(13, 5))
        inputs = rng.integers(0, 8, size=(4, 13))
        layer = MappedMVMLayer(weights, config, topology)
        fast, _ = layer.matmul(inputs)

        # Build the explicit partial tensor (cycles, 2, planes, segments, batch, out).
        pos, neg = slice_weights_differential(weights, config.weight_magnitude_bits, 1)
        cycles = slice_inputs_temporal(inputs, config.activation_bits, 1)
        planes = pos.shape[0]
        segments = [slice(s, min(s + 8, 13)) for s in range(0, 13, 8)]
        partials = np.zeros((cycles.shape[0], 2, planes, len(segments), 4, 5))
        for ci in range(cycles.shape[0]):
            for pi in range(planes):
                for si, seg in enumerate(segments):
                    partials[ci, 0, pi, si] = cycles[ci][:, seg] @ pos[pi][seg]
                    partials[ci, 1, pi, si] = cycles[ci][:, seg] @ neg[pi][seg]
        reference = shift_add_merge(partials, bits_per_cell=1, dac_bits=1)
        np.testing.assert_allclose(fast, reference)

    def test_mapped_layer_with_full_resolution_adc_is_exact(self, rng):
        weights = rng.integers(-127, 128, size=(130, 4))  # forces 2 segments of 128
        inputs = rng.integers(0, 256, size=(3, 130))
        layer = MappedMVMLayer(weights, QuantizationConfig())
        adc = UniformAdc(bits=8, delta=1.0)
        out, ops = layer.matmul(inputs, adc=adc)
        np.testing.assert_array_equal(out, reference_integer_matmul(inputs, weights))
        assert adc.stats.conversions > 0
        assert ops == adc.stats.operations

    def test_mapped_layer_partial_observer_sees_all_values(self, rng):
        weights = rng.integers(-3, 4, size=(10, 3))
        inputs = rng.integers(0, 4, size=(2, 10))
        layer = MappedMVMLayer(weights, QuantizationConfig(weight_bits=3, activation_bits=2))
        seen = []
        layer.matmul(inputs, partial_observer=lambda block: seen.append(block.size))
        footprint = layer.footprint()
        assert sum(seen) == inputs.shape[0] * footprint.conversions_per_mvm

    def test_mapped_layer_validation(self, rng):
        layer = MappedMVMLayer(rng.integers(-3, 4, size=(10, 3)),
                               QuantizationConfig(weight_bits=3, activation_bits=2))
        with pytest.raises(ValueError):
            layer.matmul(np.zeros((2, 7), dtype=int))
        with pytest.raises(ValueError):
            MappedMVMLayer(np.zeros((2, 2, 2), dtype=int))

    def test_footprint_counts_match_eq3(self, rng):
        """conversions/MVM = Ki/RDA x Kw/Rcell x segments x 2 x out (Eq. 3)."""
        weights = rng.integers(-127, 128, size=(300, 17))
        layer = MappedMVMLayer(weights, QuantizationConfig())
        footprint = layer.footprint()
        segments = -(-300 // 128)
        assert footprint.conversions_per_mvm == 8 * 7 * segments * 2 * 17
        assert footprint.num_crossbar_pairs == segments * (-(-(7 * 17) // 128))
        assert footprint.num_crossbars == 2 * footprint.num_crossbar_pairs

    @given(
        in_features=st.integers(min_value=1, max_value=40),
        out_features=st.integers(min_value=1, max_value=6),
        crossbar_size=st.sampled_from([4, 8, 16]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_exact_reconstruction(self, in_features, out_features, crossbar_size, seed):
        """For any geometry, the sliced datapath reproduces the exact MVM."""
        rng = np.random.default_rng(seed)
        config = QuantizationConfig(weight_bits=5, activation_bits=4)
        weights = rng.integers(-15, 16, size=(in_features, out_features))
        inputs = rng.integers(0, 16, size=(3, in_features))
        layer = MappedMVMLayer(weights, config, CrossbarTopology(crossbar_size=crossbar_size))
        out, _ = layer.matmul(inputs)
        np.testing.assert_array_equal(out, reference_integer_matmul(inputs, weights))
