"""Shared fixtures for the test suite.

Expensive artefacts (a trained tiny LeNet workload and its quantized /
simulated counterparts) are session-scoped so the integration tests reuse
them instead of retraining per test module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.warnings import reset_warn_once_registry
from repro.workloads import PreparedWorkload, prepare_workload


@pytest.fixture(autouse=True)
def _fresh_warn_once_registry():
    """Deprecations are deduped once-per-process; tests assert per-test."""
    reset_warn_once_registry()
    yield


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def lenet_workload() -> PreparedWorkload:
    """A small trained LeNet-5 on synthetic MNIST (shared by integration tests)."""
    return prepare_workload(
        "lenet5",
        preset="tiny",
        train_size=256,
        test_size=96,
        calibration_images=16,
        epochs=20,
        seed=7,
    )


@pytest.fixture(scope="session")
def lenet_eval_data(lenet_workload: PreparedWorkload):
    """A fixed, small evaluation subset for accuracy comparisons."""
    split = lenet_workload.eval_split(48)
    return split.images, split.labels


@pytest.fixture(scope="session")
def lenet_bitline_samples(lenet_workload: PreparedWorkload):
    """Per-layer bit-line value samples collected on the calibration images."""
    return lenet_workload.simulator.collect_bitline_distributions(
        lenet_workload.calibration.images[:8],
        batch_size=8,
        capacity_per_layer=20_000,
        seed=3,
    )


@pytest.fixture()
def skewed_samples(rng: np.random.Generator) -> np.ndarray:
    """A synthetic zero-skewed bit-line-like distribution (the paper's Fig. 3a)."""
    body = rng.exponential(scale=3.0, size=6000)
    tail = rng.uniform(40, 120, size=300)
    values = np.concatenate([body, tail])
    return np.clip(np.round(values), 0, 128)


@pytest.fixture()
def normal_samples(rng: np.random.Generator) -> np.ndarray:
    """A unimodal distribution centred away from zero (paper Section IV-B)."""
    return np.clip(np.round(rng.normal(60, 5, size=6000)), 0, 128)


@pytest.fixture()
def multimodal_samples(rng: np.random.Generator) -> np.ndarray:
    """A bimodal distribution (the 'other' case of Algorithm 1)."""
    a = rng.normal(20, 4, size=3000)
    b = rng.normal(90, 6, size=3000)
    return np.clip(np.round(np.concatenate([a, b])), 0, 128)
