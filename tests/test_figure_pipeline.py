"""Figure-reproduction pipeline tests (:mod:`repro.report.figures` + presets).

The load-bearing assertion is **shim equivalence**: the Fig. 6c record
rebuilt from the experiment store must be byte-identical to what the
pre-port benchmark code path (fresh optimizer + explicit final evaluation,
as in the seed's ``bench_fig6c_adc_ops.py``) produces on the same smoke
grid.  Alongside it: the calibrated-uniform evaluate path matches the
legacy ``uniform_adc_configs`` flow, stored Fig. 3 samples round-trip
bit-exactly, figure presets are full cache hits on rerun, and the
markdown/CSV emitters render every record.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CoDesignOptimizer, SearchSpaceConfig, uniform_adc_configs
from repro.experiments import ResultStore, WorkloadSpec, job_key, run_sweep
from repro.experiments import runner as runner_module
from repro.experiments.presets import fig3, fig6a, fig6c
from repro.report import (
    fig3a_distribution_record,
    fig6c_ops_record,
    fig6c_record_from_run,
    figure_records_from_run,
    record_to_csv,
    record_to_markdown,
)
from repro.workloads import prepare_workload

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: The smoke grid of the equivalence checks: one deliberately tiny workload.
TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)
EVAL_IMAGES = 4


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


@pytest.fixture(scope="module")
def prepared(weights_cache):
    """The pre-port pipeline's workload preparation (same spec as TINY)."""
    return prepare_workload(
        TINY.name, preset=TINY.preset, train_size=TINY.train_size,
        test_size=TINY.test_size, calibration_images=TINY.calibration_images,
        epochs=TINY.epochs, seed=TINY.seed, cache_dir=weights_cache,
    )


def record_json(record) -> bytes:
    return json.dumps(record.to_dict(), sort_keys=True, default=float).encode()


# --------------------------------------------------------------------- #
# Shim equivalence: runner-produced fig6c == pre-port seed output
# --------------------------------------------------------------------- #
class TestFig6cShimEquivalence:
    def test_runner_record_is_byte_identical_to_legacy_path(
        self, prepared, weights_cache, tmp_path
    ):
        experiment = fig6c(workloads=[TINY], images=EVAL_IMAGES)
        run = run_sweep(
            experiment.sweep, tmp_path / "store",
            weights_cache_dir=weights_cache, experiment=experiment,
        )
        ported = fig6c_record_from_run(run, ResultStore(tmp_path / "store"))

        # The pre-port benchmark body (seed bench_fig6c_adc_ops.py), with
        # the preset's own parameters so the two paths cannot drift apart.
        params = experiment.sweep.expand()[0].calibration
        assert params.source == "workload"
        split = prepared.eval_split(EVAL_IMAGES)
        optimizer = CoDesignOptimizer(
            prepared.model,
            prepared.calibration.images,
            prepared.calibration.labels,
            search_space=SearchSpaceConfig(
                num_v_grid_candidates=params.num_v_grid_candidates
            ),
            max_samples_per_layer=params.max_samples_per_layer,
        )
        result = optimizer.run(
            split.images, split.labels, batch_size=16,
            use_accuracy_loop=params.use_accuracy_loop,
            initial_n_max=params.initial_n_max,
        )
        final = prepared.simulator.evaluate(
            split.images, split.labels, result.adc_configs, batch_size=16
        )
        legacy = fig6c_ops_record(
            {TINY.name: final.remaining_ops_fraction},
            per_layer={TINY.name: final.per_layer_remaining_fraction()},
        )
        legacy.metadata["accuracy_ideal_vs_trq"] = {
            TINY.name: {"ideal": result.baseline_accuracy, "trq": final.accuracy}
        }
        legacy.metadata["eval_images"] = EVAL_IMAGES

        assert record_json(ported) == record_json(legacy)

    def test_fig6c_rerun_is_full_cache_hit_and_byte_identical(
        self, weights_cache, tmp_path
    ):
        experiment = fig6c(workloads=[TINY], images=EVAL_IMAGES)
        store = ResultStore(tmp_path / "store")
        first = run_sweep(experiment.sweep, store,
                          weights_cache_dir=weights_cache, experiment=experiment)
        runner_module.clear_runner_memos()
        rerun = run_sweep(experiment.sweep, store,
                          weights_cache_dir=weights_cache, experiment=experiment)
        assert rerun.stats.computed == 0
        assert rerun.stats.cached == rerun.stats.total
        assert record_json(fig6c_record_from_run(rerun, store)) == \
               record_json(fig6c_record_from_run(first, store))


# --------------------------------------------------------------------- #
# Calibrated-uniform evaluations match the legacy uniform_adc_configs flow
# --------------------------------------------------------------------- #
class TestFig6aEquivalence:
    def test_calibrated_uniform_rows_match_legacy_evaluate(
        self, prepared, weights_cache, tmp_path
    ):
        experiment = fig6a(workloads=[TINY], images=EVAL_IMAGES, bits=[8, 4])
        store = ResultStore(tmp_path / "store")
        run = run_sweep(experiment.sweep, store,
                        weights_cache_dir=weights_cache, experiment=experiment)
        by_config = {row["config"]: row for row in run.rows}

        split = prepared.eval_split(EVAL_IMAGES)
        samples = prepared.simulator.collect_bitline_distributions(
            prepared.calibration.images[:16], batch_size=8, seed=0
        )
        for bits in (8, 4):
            legacy = prepared.simulator.evaluate(
                split.images, split.labels,
                uniform_adc_configs(samples, bits=bits), batch_size=16,
            )
            assert by_config[str(bits)]["accuracy"] == legacy.accuracy
            assert by_config[str(bits)]["remaining_ops_fraction"] == \
                   legacy.remaining_ops_fraction

    def test_reference_rows_match_model_forward(self, prepared, weights_cache, tmp_path):
        from repro.nn import top1_accuracy

        experiment = fig6a(workloads=[TINY], images=EVAL_IMAGES, bits=[4])
        run = run_sweep(experiment.sweep, tmp_path / "store",
                        weights_cache_dir=weights_cache, experiment=experiment)
        by_config = {row["config"]: row for row in run.rows}
        split = prepared.eval_split(EVAL_IMAGES)
        assert by_config["f/f"]["accuracy"] == top1_accuracy(
            prepared.model(split.images), split.labels
        )


# --------------------------------------------------------------------- #
# Fig. 3 sample arrays round-trip bit-exactly through the store
# --------------------------------------------------------------------- #
class TestFig3Pipeline:
    def test_stored_samples_rebuild_the_legacy_record(
        self, prepared, weights_cache, tmp_path
    ):
        experiment = fig3(workloads=[TINY])
        store = ResultStore(tmp_path / "store")
        run = run_sweep(experiment.sweep, store,
                        weights_cache_dir=weights_cache, experiment=experiment)
        capture = experiment.sweep.expand()[0].distribution
        legacy_samples = prepared.simulator.collect_bitline_distributions(
            prepared.calibration.images[: capture.images],
            batch_size=capture.batch_size,
            capacity_per_layer=capture.capacity_per_layer,
            seed=capture.seed,
        )
        stored = store.load_arrays(run.keys[0])
        assert set(stored) == set(legacy_samples)
        for name in stored:
            np.testing.assert_array_equal(stored[name], legacy_samples[name])

        records = figure_records_from_run("fig3", run, store)
        rebuilt = records[f"fig3a_{TINY.name}"]
        legacy = fig3a_distribution_record(legacy_samples, num_bins=16)
        legacy.metadata.update(
            {"workload": TINY.name, "calibration_images": capture.images}
        )
        assert record_json(rebuilt) == record_json(legacy)


# --------------------------------------------------------------------- #
# Emitters render every record
# --------------------------------------------------------------------- #
class TestEmitters:
    def test_markdown_and_csv_render_rows(self, weights_cache, tmp_path):
        experiment = fig6c(workloads=[TINY], images=EVAL_IMAGES)
        store = ResultStore(tmp_path / "store")
        run = run_sweep(experiment.sweep, store,
                        weights_cache_dir=weights_cache, experiment=experiment)
        record = fig6c_record_from_run(run, store)
        markdown = record_to_markdown(record)
        assert markdown.startswith("# fig6c:")
        assert "| workload |" in markdown
        csv_text = record_to_csv(record)
        header, first = csv_text.splitlines()[:2]
        assert header.startswith("workload,")
        assert first.startswith(f"{TINY.name},")

    def test_ascii_output_renders_bar_charts(self, weights_cache, tmp_path):
        """The --ascii format: render_figure_outputs writes a <stem>.txt
        with bar charts (the once-unused ascii_bar_chart, now wired in)."""
        from repro.report import record_to_ascii, render_figure_outputs

        experiment = fig6c(workloads=[TINY], images=EVAL_IMAGES)
        store = ResultStore(tmp_path / "store")
        run = run_sweep(experiment.sweep, store,
                        weights_cache_dir=weights_cache, experiment=experiment)
        record = fig6c_record_from_run(run, store)
        text = record_to_ascii(record)
        assert text.startswith("# fig6c:")
        assert "#" in text.splitlines()[4]  # a bar of the chart
        assert "remaining_fraction" in text

        written = render_figure_outputs(
            "fig6c", run, store, tmp_path / "out",
            formats=("json", "md", "csv", "ascii"),
        )
        txt = [p for p in written if p.suffix == ".txt"]
        assert len(txt) == 1 and txt[0].name == "fig6c.txt"
        assert txt[0].read_text() == text
        # the default format set stays unchanged (no .txt unless asked)
        default = render_figure_outputs("fig6c", run, store, tmp_path / "out2")
        assert not [p for p in default if p.suffix == ".txt"]
