"""Unit tests for the device non-ideality subsystem (repro.nonideal).

Covers the registry round-trips, the counter-based keyed sampling rules
(determinism under reseeding, independence across key coordinates, static
vs per-read lifetimes), the semantics of each model, the LUT composition of
pure value maps, the CellConfig migration, and the Monte Carlo statistics
(CI shrinks with trials; exact reproducibility under a fixed seed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc.lut import compose_transfer_lut
from repro.adc.uniform import UniformAdc
from repro.crossbar import CellConfig, MappedMVMLayer, ReRAMCellModel
from repro.nonideal import (
    ConductanceVariation,
    GaussianReadNoise,
    IRDropAttenuation,
    NonIdealityModel,
    NonIdealityStack,
    RetentionDrift,
    StuckAtFaults,
    as_stack,
    build_model,
    registered_models,
)
from repro.nonideal.base import LayerNoiseContext
from repro.sim.stats import MonteCarloResult


def _state(stack, columns=32, segments=(16, 16), max_bitline=64, layer="layer"):
    return stack.bind_layer(
        layer,
        crossbar_size=16,
        segment_sizes=segments,
        columns=columns,
        max_bitline=max_bitline,
    )


def _block(rng, rows=4, columns=32, high=64):
    return rng.integers(0, high + 1, size=(rows, columns)).astype(np.float64)


ALL_MODELS = [
    GaussianReadNoise(sigma=0.5),
    GaussianReadNoise(sigma=0.1, relative=True),
    ConductanceVariation(sigma=0.1),
    ConductanceVariation(sigma=0.1, quantize=True),
    StuckAtFaults(rate_on=0.01, rate_off=0.02),
    RetentionDrift(time=10.0, nu=0.1),
    IRDropAttenuation(alpha=0.2),
]


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_builtin_models_registered(self):
        assert set(registered_models()) >= {
            "gaussian_read_noise",
            "conductance_variation",
            "stuck_at_faults",
            "retention_drift",
            "ir_drop",
        }

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_spec_round_trip(self, model):
        spec = model.spec()
        rebuilt = build_model(spec)
        assert type(rebuilt) is type(model)
        assert rebuilt.spec() == spec

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(KeyError, match="gaussian_read_noise"):
            build_model({"model": "flux_capacitor"})
        with pytest.raises(ValueError, match="missing the 'model' key"):
            build_model({"sigma": 1.0})

    def test_stack_spec_round_trip(self):
        stack = NonIdealityStack(ALL_MODELS, seed=42)
        rebuilt = NonIdealityStack.from_specs(stack.specs(), seed=42)
        assert rebuilt.specs() == stack.specs()
        assert rebuilt.seed == stack.seed

    def test_stack_accepts_spec_dicts_directly(self):
        stack = NonIdealityStack(
            [{"model": "gaussian_read_noise", "sigma": 0.3, "relative": False}]
        )
        assert isinstance(stack.models[0], GaussianReadNoise)
        assert stack.models[0].sigma == 0.3

    def test_as_stack_normalisation(self):
        model = GaussianReadNoise(sigma=0.5)
        assert as_stack(None) is None
        assert as_stack([]) is None
        stack = as_stack(model)
        assert isinstance(stack, NonIdealityStack) and stack.models == (model,)
        assert as_stack(stack) is stack
        assert as_stack(stack, seed=9).seed == 9
        with pytest.raises(TypeError):
            as_stack(3.14)


# --------------------------------------------------------------------- #
# keyed sampling
# --------------------------------------------------------------------- #
class TestKeyedSampling:
    def test_same_seed_is_deterministic(self, rng):
        block = _block(rng)
        stack = NonIdealityStack([GaussianReadNoise(0.5)], seed=3)
        a = _state(stack).perturb_block(block, segment=1, cycle=2)
        b = _state(stack).perturb_block(block, segment=1, cycle=2)
        np.testing.assert_array_equal(a, b)

    def test_derive_trial_folds_in_the_stack_seed(self):
        models = [GaussianReadNoise(0.5)]
        a = NonIdealityStack(models, seed=111).derive_trial(0, 3)
        b = NonIdealityStack(models, seed=222).derive_trial(0, 3)
        assert a.seed != b.seed
        # ... while staying reproducible for a fixed (stack seed, run seed).
        assert a.seed == NonIdealityStack(models, seed=111).derive_trial(0, 3).seed

    def test_legacy_apply_draws_fresh_noise_per_call(self, rng):
        """The deprecated one-shot API must keep its old behaviour of fresh
        draws on every call — including for statically-keyed models, which
        bind a fresh pseudo-device per call."""
        values = rng.uniform(1.0, 50.0, size=400)
        for model in (GaussianReadNoise(0.5), ConductanceVariation(0.1)):
            first, second = model.apply(values), model.apply(values)
            assert not np.array_equal(first, second)

    def test_reseeding_changes_draws(self, rng):
        block = _block(rng)
        stack = NonIdealityStack([GaussianReadNoise(0.5)], seed=3)
        a = _state(stack).perturb_block(block, segment=0, cycle=0)
        b = _state(stack.reseeded(4)).perturb_block(block, segment=0, cycle=0)
        assert not np.array_equal(a, b)

    def test_read_noise_differs_per_key_coordinate(self, rng):
        """Per-read noise must be fresh across chunk, segment and cycle."""
        block = _block(rng)
        stack = NonIdealityStack([GaussianReadNoise(0.5)], seed=0)
        state = _state(stack)
        base = state.perturb_block(block, segment=0, cycle=0)
        assert not np.array_equal(base, state.perturb_block(block, segment=1, cycle=0))
        assert not np.array_equal(base, state.perturb_block(block, segment=0, cycle=1))
        state.next_chunk()
        assert not np.array_equal(base, state.perturb_block(block, segment=0, cycle=0))

    def test_static_models_are_fixed_across_reads(self, rng):
        """Programming variation and fault maps model one physical device:
        identical across cycles and chunks, distinct across segments."""
        block = _block(rng)
        for model in (ConductanceVariation(0.1), StuckAtFaults(rate_on=0.05)):
            state = _state(NonIdealityStack([model], seed=1))
            first = state.perturb_block(block, segment=0, cycle=0)
            np.testing.assert_array_equal(
                first, state.perturb_block(block, segment=0, cycle=3)
            )
            state.next_chunk()
            np.testing.assert_array_equal(
                first, state.perturb_block(block, segment=0, cycle=0)
            )
            assert not np.array_equal(
                first, state.perturb_block(block, segment=1, cycle=0)
            )

    def test_streams_differ_across_layers_and_model_index(self, rng):
        block = _block(rng)
        stack = NonIdealityStack([GaussianReadNoise(0.5)], seed=0)
        a = _state(stack, layer="a").perturb_block(block, segment=0, cycle=0)
        b = _state(stack, layer="b").perturb_block(block, segment=0, cycle=0)
        assert not np.array_equal(a, b)
        two = NonIdealityStack(
            [ConductanceVariation(0.1), ConductanceVariation(0.1)], seed=0
        )
        bound = _state(two)._bound
        assert not np.array_equal(bound[0]._factors[0], bound[1]._factors[0])

    def test_perturb_never_mutates_input(self, rng):
        block = _block(rng)
        snapshot = block.copy()
        stack = NonIdealityStack(ALL_MODELS, seed=0)
        _state(stack).perturb_block(block, segment=0, cycle=0)
        np.testing.assert_array_equal(block, snapshot)


# --------------------------------------------------------------------- #
# model semantics
# --------------------------------------------------------------------- #
class TestModelSemantics:
    def test_gaussian_zero_sigma_is_identity(self, rng):
        block = _block(rng)
        state = _state(NonIdealityStack([GaussianReadNoise(0.0)]))
        out = state.perturb_block(block, 0, 0)
        np.testing.assert_array_equal(out, block)

    def test_gaussian_clamps_non_negative(self, rng):
        block = np.zeros((8, 32))
        state = _state(NonIdealityStack([GaussianReadNoise(5.0)]))
        out = state.perturb_block(block, 0, 0)
        assert out.min() >= 0.0 and out.max() > 0.0

    def test_relative_gaussian_scales_with_max_bitline(self, rng):
        block = np.full((64, 32), 10.0)
        small = _state(NonIdealityStack([GaussianReadNoise(0.1, relative=True)]),
                       max_bitline=10)
        large = _state(NonIdealityStack([GaussianReadNoise(0.1, relative=True)]),
                       max_bitline=1000)
        dev_small = np.abs(small.perturb_block(block, 0, 0) - block).mean()
        dev_large = np.abs(large.perturb_block(block, 0, 0) - block).mean()
        assert dev_large > 10 * dev_small

    def test_quantized_variation_keeps_integer_domain(self, rng):
        block = _block(rng)
        stack = NonIdealityStack([ConductanceVariation(0.2, quantize=True)], seed=2)
        state = _state(stack)
        assert state.integer_domain
        out = state.perturb_block(block, 0, 0)
        np.testing.assert_array_equal(out, np.round(out))
        assert out.max() <= state.lut_bound

    def test_unquantized_variation_is_continuous(self):
        state = _state(NonIdealityStack([ConductanceVariation(0.2)]))
        assert not state.integer_domain

    def test_stuck_at_offsets_respect_bounds(self, rng):
        block = _block(rng, high=64)
        stack = NonIdealityStack([StuckAtFaults(rate_on=0.1, rate_off=0.1)], seed=0)
        state = _state(stack)
        assert state.integer_domain
        out = state.perturb_block(block, 0, 0)
        assert out.min() >= 0.0
        assert out.max() <= state.lut_bound
        np.testing.assert_array_equal(out, np.round(out))

    def test_stuck_at_zero_rates_is_identity(self, rng):
        block = _block(rng)
        state = _state(NonIdealityStack([StuckAtFaults()]))
        np.testing.assert_array_equal(state.perturb_block(block, 0, 0), block)
        assert state.lut_bound == 64

    def test_retention_drift_shrinks_values_monotonically(self):
        model = RetentionDrift(time=100.0, nu=0.1)
        assert 0.0 < model.factor < 1.0
        state = _state(NonIdealityStack([model]))
        vmap = state.pure_value_map()
        assert vmap is not None
        assert vmap[0] == 0
        assert np.all(np.diff(vmap) >= 0)  # monotone
        assert np.all(vmap <= np.arange(vmap.size))  # never amplifies
        # perturb must equal the map on integers (LUT-composition contract)
        values = np.arange(65, dtype=np.float64).reshape(1, -1)
        np.testing.assert_array_equal(
            state.perturb_block(values, 0, 0).ravel(), vmap[np.arange(65)]
        )

    def test_zero_time_drift_is_identity(self):
        state = _state(NonIdealityStack([RetentionDrift(time=0.0, nu=0.3)]))
        np.testing.assert_array_equal(
            state.pure_value_map(), np.arange(65, dtype=np.int64)
        )

    def test_ir_drop_attenuates_far_columns_more(self):
        block = np.full((2, 32), 100.0)
        state = _state(NonIdealityStack([IRDropAttenuation(alpha=0.2)]), columns=32)
        out = state.perturb_block(block, 0, 0)
        # Columns are packed 16 (crossbar_size) to an array in this context.
        assert out[0, 0] == pytest.approx(100.0)
        assert out[0, 15] == pytest.approx(80.0)
        assert out[0, 16] == pytest.approx(100.0)  # next array starts fresh

    def test_parameter_validation(self):
        for bad in (
            lambda: GaussianReadNoise(-0.1),
            lambda: ConductanceVariation(-1.0),
            lambda: StuckAtFaults(rate_on=1.5),
            lambda: StuckAtFaults(rate_off=-0.1),
            lambda: RetentionDrift(time=-1.0),
            lambda: IRDropAttenuation(alpha=2.0),
        ):
            with pytest.raises(ValueError):
                bad()

    def test_mixed_stack_domain_and_pure_map(self):
        assert _state(NonIdealityStack([
            StuckAtFaults(rate_on=0.01), RetentionDrift(time=1.0)
        ])).integer_domain
        assert _state(NonIdealityStack([
            StuckAtFaults(rate_on=0.01), GaussianReadNoise(0.5)
        ])).integer_domain is False
        # Stuck-at is column-dependent -> no pure per-value map.
        assert _state(NonIdealityStack([StuckAtFaults(rate_on=0.01)])).pure_value_map() is None
        # Two pure maps compose.
        both = _state(NonIdealityStack([
            RetentionDrift(time=1.0, nu=0.1), RetentionDrift(time=2.0, nu=0.1)
        ]))
        vmap = both.pure_value_map()
        assert vmap is not None and vmap[64] < 64


# --------------------------------------------------------------------- #
# LUT composition
# --------------------------------------------------------------------- #
class TestComposeTransferLut:
    def test_composition_equals_manual_indexing(self):
        adc = UniformAdc(bits=4, delta=1.5)
        base = adc.transfer_lut(40)
        vmap = np.minimum(np.arange(65), 40)
        composed = compose_transfer_lut(base, vmap)
        np.testing.assert_array_equal(composed.values, base.values[vmap])
        np.testing.assert_array_equal(composed.levels, base.levels[vmap])
        np.testing.assert_array_equal(composed.ops_per_value, base.ops_per_value[vmap])
        assert composed.scale == base.scale

    def test_out_of_domain_map_rejected(self):
        adc = UniformAdc(bits=4, delta=1.0)
        base = adc.transfer_lut(10)
        with pytest.raises(ValueError):
            compose_transfer_lut(base, np.array([0, 11]))


# --------------------------------------------------------------------- #
# CellConfig migration
# --------------------------------------------------------------------- #
class TestCellConfigMigration:
    def test_from_cell_config_maps_both_knobs(self):
        stack = NonIdealityStack.from_cell_config(
            CellConfig(programming_sigma=0.1, read_noise_sigma=0.02), seed=7
        )
        assert [type(m) for m in stack.models] == [ConductanceVariation, GaussianReadNoise]
        variation, read = stack.models
        assert variation.sigma == 0.1 and not variation.quantize
        assert read.sigma == 0.02 and read.relative
        assert stack.seed == 7

    def test_ideal_cell_config_gives_empty_stack(self):
        assert len(NonIdealityStack.from_cell_config(CellConfig())) == 0

    def test_reram_cell_model_warns_on_nonideal_config(self):
        with pytest.warns(DeprecationWarning, match="from_cell_config"):
            ReRAMCellModel(CellConfig(programming_sigma=0.1))

    def test_reram_cell_model_silent_when_ideal(self, recwarn):
        ReRAMCellModel(CellConfig())
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )


# --------------------------------------------------------------------- #
# Monte Carlo statistics
# --------------------------------------------------------------------- #
def _mc_result(accuracies, confidence=0.95):
    accuracies = np.asarray(accuracies, dtype=np.float64)
    return MonteCarloResult(
        trials=accuracies.size,
        seed=0,
        confidence=confidence,
        accuracies=accuracies,
        flip_rates=np.zeros_like(accuracies),
        clean_accuracy=1.0,
        layer_stats={},
    )


class TestMonteCarloStatistics:
    def test_ci_shrinks_with_trials(self, rng):
        population = 0.8 + 0.05 * rng.standard_normal(4096)
        small = _mc_result(population[:8])
        large = _mc_result(population[:512])
        assert large.ci_halfwidth < small.ci_halfwidth
        # ~1/sqrt(n) scaling (std estimates differ, so allow slack)
        assert large.ci_halfwidth < small.ci_halfwidth / 4

    def test_ci_brackets_the_mean(self, rng):
        result = _mc_result(0.7 + 0.1 * rng.standard_normal(64))
        low, high = result.accuracy_ci
        assert low < result.mean_accuracy < high
        wider = _mc_result(result.accuracies, confidence=0.99)
        assert wider.ci_halfwidth > result.ci_halfwidth

    def test_degenerate_single_trial(self):
        result = _mc_result([0.5])
        assert result.std_accuracy == 0.0
        assert result.ci_halfwidth == float("inf")

    def test_summary_fields(self):
        result = _mc_result([0.5, 0.7])
        summary = result.summary()
        assert summary["mean_accuracy"] == pytest.approx(0.6)
        assert summary["worst_accuracy"] == pytest.approx(0.5)
        assert summary["mean_accuracy_drop"] == pytest.approx(0.4)
        assert summary["clean_accuracy"] == 1.0


# --------------------------------------------------------------------- #
# binding geometry
# --------------------------------------------------------------------- #
class TestBinding:
    def test_bind_mapped_reads_layer_geometry(self, rng):
        layer = MappedMVMLayer(rng.integers(-127, 128, size=(200, 5)))
        stack = NonIdealityStack([StuckAtFaults(rate_on=0.01)], seed=0)
        state = stack.bind_mapped("conv", layer)
        bound = state._bound[0]
        assert bound.ctx.segment_sizes == tuple(layer.segment_sizes)
        assert bound.ctx.max_bitline == layer.max_bitline_value
        assert bound.ctx.columns == 2 * layer.num_weight_planes * layer.out_features
        assert state.lut_bound >= layer.max_bitline_value

    def test_custom_model_registration_contract(self):
        class Halver(NonIdealityModel):
            name = ""  # unregistered on purpose

            def params(self):
                return {}

            def bind(self, ctx: LayerNoiseContext):
                from repro.nonideal.base import BoundModel

                class _B(BoundModel):
                    def perturb(self, values, segment, cycle, chunk):
                        return np.asarray(values, dtype=np.float64) / 2.0

                return _B(ctx)

        stack = NonIdealityStack([Halver()])
        out = _state(stack).perturb_block(np.full((1, 32), 8.0), 0, 0)
        np.testing.assert_array_equal(out, np.full((1, 32), 4.0))
