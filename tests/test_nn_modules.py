"""Tests for Module/Parameter plumbing, layers, activations, losses, optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    BatchNorm2d,
    Conv2d,
    CosineAnnealingLR,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MSELoss,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    StepLR,
    Tanh,
    top1_accuracy,
)
from repro.nn.metrics import classification_report, confusion_matrix, topk_accuracy


# --------------------------------------------------------------------- #
# Module plumbing
# --------------------------------------------------------------------- #
class TestModulePlumbing:
    def test_parameter_registration_and_traversal(self):
        model = Sequential(Conv2d(1, 2, 3, rng=0), ReLU(), Flatten(), Linear(8, 4, rng=0))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "3.bias" in names
        assert model.num_parameters() == sum(p.size for p in model.parameters())

    def test_named_modules_and_children(self):
        model = Sequential(ReLU(), Sequential(ReLU()))
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "1.0" in names
        assert len(list(model.children())) == 2

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5, rng=0), ReLU())
        model.eval()
        assert not model.training and not model[0].training
        model.train()
        assert model[0].training

    def test_forward_hook_fires_and_removes(self):
        layer = Linear(3, 2, rng=0)
        calls = []
        handle = layer.register_forward_hook(lambda m, x, y: calls.append(y.shape))
        layer(np.zeros((4, 3)))
        assert calls == [(4, 2)]
        handle.remove()
        layer(np.zeros((4, 3)))
        assert len(calls) == 1

    def test_state_dict_round_trip(self):
        a = Sequential(Conv2d(1, 2, 3, rng=1), BatchNorm2d(2), Flatten(), Linear(8, 3, rng=1))
        b = Sequential(Conv2d(1, 2, 3, rng=2), BatchNorm2d(2), Flatten(), Linear(8, 3, rng=2))
        x = np.random.default_rng(0).normal(size=(2, 1, 4, 4))
        a.eval(); b.eval()
        assert not np.allclose(a(x), b(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x), b(x))

    def test_state_dict_strict_mismatch(self):
        model = Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": model.weight.data})  # missing bias
        with pytest.raises(ValueError):
            model.load_state_dict({"weight": np.zeros((5, 5)), "bias": model.bias.data})

    def test_zero_grad(self):
        layer = Linear(3, 2, rng=0)
        layer.weight.grad += 1.0
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0.0)

    def test_sequential_indexing(self):
        model = Sequential(ReLU(), Identity())
        assert len(model) == 2
        assert isinstance(model[1], Identity)

    def test_backward_not_implemented_message(self):
        class Dummy(Module):
            def forward(self, x):
                return x

        with pytest.raises(NotImplementedError):
            Dummy().backward(np.zeros(3))


# --------------------------------------------------------------------- #
# Layers: analytic vs numerical gradients
# --------------------------------------------------------------------- #
def _numeric_param_grad(model, param, x, upstream, eps=1e-6):
    """Central-difference gradient of sum(model(x) * upstream) w.r.t. param[0...]."""
    flat = param.data.ravel()
    grads = np.zeros_like(flat)
    for i in range(min(flat.size, 6)):  # spot-check a few entries
        original = flat[i]
        flat[i] = original + eps
        plus = float(np.sum(model(x) * upstream))
        flat[i] = original - eps
        minus = float(np.sum(model(x) * upstream))
        flat[i] = original
        grads[i] = (plus - minus) / (2 * eps)
    return grads


class TestLayerGradients:
    @pytest.mark.parametrize("layer_factory,x_shape", [
        (lambda: Conv2d(2, 3, 3, padding=1, rng=0), (2, 2, 5, 5)),
        (lambda: Linear(6, 4, rng=0), (3, 6)),
        (lambda: BatchNorm2d(3), (4, 3, 5, 5)),
    ])
    def test_parameter_gradients(self, rng, layer_factory, x_shape):
        layer = layer_factory()
        layer.train()
        x = rng.normal(size=x_shape)
        out = layer(x)
        upstream = rng.normal(size=out.shape)
        layer.zero_grad()
        layer(x)  # refresh the cache, then backprop
        layer.backward(upstream)
        for name, param in layer.named_parameters():
            numeric = _numeric_param_grad(layer, param, x, upstream)
            analytic = param.grad.ravel()[: numeric.size]
            np.testing.assert_allclose(analytic[:6], numeric[:6], rtol=2e-3, atol=1e-5)

    @pytest.mark.parametrize("module,x_shape", [
        (ReLU(), (3, 4)),
        (LeakyReLU(0.1), (3, 4)),
        (Sigmoid(), (3, 4)),
        (Tanh(), (3, 4)),
        (MaxPool2d(2), (2, 2, 4, 4)),
        (GlobalAvgPool2d(), (2, 3, 4, 4)),
        (Flatten(), (2, 3, 4, 4)),
    ])
    def test_input_gradients(self, rng, module, x_shape):
        x = rng.normal(size=x_shape)
        out = module(x)
        upstream = rng.normal(size=out.shape)
        analytic = module.backward(upstream)

        eps = 1e-6
        flat_x = x.ravel()
        for i in range(0, flat_x.size, max(1, flat_x.size // 5)):
            original = flat_x[i]
            flat_x[i] = original + eps
            plus = float(np.sum(module(x) * upstream))
            flat_x[i] = original - eps
            minus = float(np.sum(module(x) * upstream))
            flat_x[i] = original
            module(x)  # restore cache
            numeric = (plus - minus) / (2 * eps)
            assert analytic.ravel()[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_conv_errors_without_forward(self):
        layer = Conv2d(1, 1, 3, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 3, 3)))

    def test_conv_output_shape_helper(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        assert layer.output_shape((32, 32)) == (16, 16)

    def test_dropout_eval_is_identity_and_train_scales(self, rng):
        x = rng.normal(size=(64, 64))
        drop = Dropout(0.5, rng=0)
        drop.eval()
        np.testing.assert_array_equal(drop(x), x)
        drop.train()
        out = drop(x)
        kept = out != 0
        # Inverted dropout rescales survivors by 1/keep.
        np.testing.assert_allclose(out[kept], x[kept] * 2.0)

    def test_dropout_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(loc=3.0, size=(8, 2, 4, 4))
        bn.train()
        for _ in range(30):
            bn(x)
        bn.eval()
        out = bn(x)
        assert abs(out.mean()) < 0.5  # roughly normalised using running stats
        with pytest.raises(ValueError):
            bn(rng.normal(size=(2, 3, 4, 4)))


# --------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------- #
class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = np.array([0, 1, 2, 3, 1])
        loss = CrossEntropyLoss()
        value = loss(logits, labels)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(5), labels]))
        assert value == pytest.approx(expected)

    def test_cross_entropy_gradient_numerical(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        loss = CrossEntropyLoss(label_smoothing=0.1)
        loss(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 3)]:
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            numeric = (loss(lp, labels) - loss(lm, labels)) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_mse_loss(self, rng):
        predictions = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 3))
        loss = MSELoss()
        assert loss(predictions, targets) == pytest.approx(np.mean((predictions - targets) ** 2))
        grad = loss.backward()
        np.testing.assert_allclose(grad, 2 * (predictions - targets) / predictions.size)
        with pytest.raises(ValueError):
            loss(predictions, targets[:2])


# --------------------------------------------------------------------- #
# Optimisers and schedules
# --------------------------------------------------------------------- #
class TestOptim:
    def _quadratic_params(self):
        return [Parameter(np.array([5.0, -3.0]))]

    def test_sgd_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = SGD(params, lr=0.1, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            params[0].grad += 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-3

    def test_adam_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = Adam(params, lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            params[0].grad += 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-2

    def test_sgd_weight_decay_shrinks_weights(self):
        params = [Parameter(np.array([1.0]))]
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        opt.step()  # zero gradient, only decay
        assert params[0].data[0] < 1.0

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD(self._quadratic_params(), lr=-1)
        with pytest.raises(ValueError):
            SGD(self._quadratic_params(), lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(self._quadratic_params(), lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            Adam(self._quadratic_params(), lr=0.1, betas=(1.2, 0.9))

    def test_step_lr_schedule(self):
        opt = SGD(self._quadratic_params(), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_schedule_endpoints(self):
        opt = SGD(self._quadratic_params(), lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert values[0] < 1.0


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_top1_and_topk(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1], [0.2, 0.3, 0.5]])
        labels = np.array([1, 0, 1])
        assert top1_accuracy(logits, labels) == pytest.approx(2 / 3)
        assert topk_accuracy(logits, labels, k=2) == pytest.approx(1.0)
        assert top1_accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=0)

    def test_confusion_matrix_and_report(self):
        predictions = np.array([0, 1, 1, 2, 2, 2])
        labels = np.array([0, 1, 2, 2, 2, 0])
        matrix = confusion_matrix(predictions, labels, 3)
        assert matrix[2, 2] == 2 and matrix[0, 2] == 1
        report = classification_report(predictions, labels, 3)
        assert 0.0 <= report["macro_f1"] <= 1.0
        assert report["accuracy"] == pytest.approx(4 / 6)
