"""Tests for the objectives, search space and Algorithm 1 calibration search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SEARCH_SPACE,
    DistributionType,
    LayerAdcSetting,
    SearchSpaceConfig,
    TRQParams,
    TwinRangeCalibrator,
    candidate_params,
    evaluate_trq_candidate,
    evaluate_uniform_candidate,
    select_candidate,
    settings_to_adc_configs,
    summarize_distribution,
    trq_energy_ops,
    trq_mse,
    uniform_adc_configs,
    uniform_fallback_bits,
    v_grid_candidates,
)
from repro.adc import AdcMode


# --------------------------------------------------------------------- #
# objectives (Eq. 9 / Eq. 10)
# --------------------------------------------------------------------- #
class TestObjectives:
    def test_energy_counts_detection_and_regions(self):
        params = TRQParams(n_r1=2, n_r2=6, m=2, delta_r1=1.0, bias=0)
        values = np.array([0.0, 1.0, 2.0, 100.0])
        # 4 detections + 3 samples in R1 (2 ops each) + 1 in R2 (6 ops).
        assert trq_energy_ops(values, params) == 4 + 6 + 6
        assert trq_energy_ops(np.array([]), params) == 0.0

    def test_mse_zero_on_grid(self):
        params = TRQParams(n_r1=3, n_r2=3, m=0, delta_r1=1.0)
        values = np.arange(8, dtype=np.float64)
        assert trq_mse(values, params) == 0.0

    def test_candidate_evaluations(self, skewed_samples):
        params = TRQParams(n_r1=3, n_r2=7, m=4, delta_r1=1.0)
        trq_eval = evaluate_trq_candidate(skewed_samples, params)
        assert 0.0 < trq_eval.r1_fraction < 1.0
        assert trq_eval.mean_ops_per_conversion < 8.0
        uniform_eval = evaluate_uniform_candidate(skewed_samples, 7, 1.0)
        assert uniform_eval.is_uniform and uniform_eval.mean_ops_per_conversion == 7.0

    def test_select_candidate_prefers_lower_energy_within_tolerance(self, skewed_samples):
        trq_eval = evaluate_trq_candidate(
            skewed_samples, TRQParams(n_r1=3, n_r2=7, m=4, delta_r1=1.0)
        )
        uniform_eval = evaluate_uniform_candidate(skewed_samples, 7, 1.0)
        mse_scale = float(np.mean(skewed_samples**2))
        chosen = select_candidate(trq_eval, uniform_eval, mse_tolerance=0.1, mse_scale=mse_scale)
        assert chosen is trq_eval  # fewer ops, error small relative to the data scale

    def test_select_candidate_falls_back_on_mse(self):
        good_mse = evaluate_uniform_candidate(np.arange(16.0), 4, 1.0)  # exact
        bad_trq = evaluate_trq_candidate(
            np.arange(16.0), TRQParams(n_r1=1, n_r2=1, m=3, delta_r1=1.0)
        )
        chosen = select_candidate(bad_trq, good_mse, mse_tolerance=0.05)
        assert chosen is good_mse
        with pytest.raises(ValueError):
            select_candidate(bad_trq, good_mse, mse_tolerance=-1)


# --------------------------------------------------------------------- #
# search space
# --------------------------------------------------------------------- #
class TestSearchSpace:
    def test_v_grid_candidates_span_alpha_beta(self):
        space = SearchSpaceConfig(num_v_grid_candidates=5)
        grids = v_grid_candidates(255.0, space)
        assert len(grids) == 5
        assert grids[0] == pytest.approx(0.1 * 255 / 255)
        assert grids[-1] == pytest.approx(1.2 * 255 / 255)
        assert np.all(np.diff(grids) > 0)
        np.testing.assert_array_equal(v_grid_candidates(0.0, space), [1.0])

    def test_search_space_validation(self):
        with pytest.raises(ValueError):
            SearchSpaceConfig(alpha=1.5, beta=1.0)
        with pytest.raises(ValueError):
            SearchSpaceConfig(m_min=3, m_max=1)

    def test_candidates_ideal_distribution_use_eq11_structure(self, skewed_samples):
        summary = summarize_distribution(skewed_samples)
        assert summary.kind is DistributionType.IDEAL
        candidates = list(candidate_params(summary, skewed_samples, 1.0, n_max=6))
        assert candidates
        # Ideal case: bias fixed to zero, one NR1 value per candidate, shared M.
        assert all(c.bias == 0 for c in candidates)
        assert all(c.delta_r1 == 1.0 for c in candidates)
        assert len({c.n_r1 for c in candidates}) == len(candidates)
        # Hardware constraint M <= RADC - NR2 is always respected.
        assert all(c.m <= DEFAULT_SEARCH_SPACE.adc_resolution - c.n_r2 for c in candidates)

    def test_candidates_normal_distribution_search_bias(self, normal_samples):
        summary = summarize_distribution(normal_samples)
        candidates = list(candidate_params(summary, normal_samples, 1.0, n_max=5))
        assert any(c.bias > 0 for c in candidates)

    def test_candidates_other_distribution_equal_bits(self, multimodal_samples):
        summary = summarize_distribution(multimodal_samples)
        candidates = list(candidate_params(summary, multimodal_samples, 1.0, n_max=5))
        assert candidates
        assert all(c.n_r1 == c.n_r2 for c in candidates)
        assert len({c.m for c in candidates}) > 1

    def test_uniform_fallback_bits(self, skewed_samples):
        bits, delta = uniform_fallback_bits(skewed_samples, v_grid=1.0, n_max=5)
        assert bits == 5
        assert delta == pytest.approx(skewed_samples.max() / 31)
        bits_small, _ = uniform_fallback_bits(np.array([0.0, 3.0]), v_grid=1.0, n_max=7)
        assert bits_small == 2  # Rideal = ceil(log2(4)) = 2


# --------------------------------------------------------------------- #
# calibration (Algorithm 1)
# --------------------------------------------------------------------- #
class TestCalibration:
    def _calibrator(self, **kwargs) -> TwinRangeCalibrator:
        space = SearchSpaceConfig(num_v_grid_candidates=8)
        defaults = dict(search_space=space, max_samples_per_layer=4000, seed=0)
        defaults.update(kwargs)
        return TwinRangeCalibrator(**defaults)

    def test_layer_calibration_on_skewed_data_saves_ops(self, skewed_samples):
        calibrator = self._calibrator()
        summary, trq_eval, uniform_eval = calibrator.calibrate_layer(skewed_samples, n_max=7)
        assert summary.kind is DistributionType.IDEAL
        assert trq_eval is not None
        # The whole point of the paper: fewer mean ops than the 8-op baseline.
        assert trq_eval.mean_ops_per_conversion < 8.0
        assert trq_eval.r1_fraction > 0.5

    def test_full_calibration_without_accuracy_loop(self, skewed_samples, normal_samples,
                                                    multimodal_samples):
        calibrator = self._calibrator()
        result = calibrator.calibrate(
            {"a": skewed_samples, "b": normal_samples, "c": multimodal_samples}
        )
        assert set(result.layers) == {"a", "b", "c"}
        assert result.n_max == 7  # single iteration at RADC - 1
        assert result.final_accuracy is None
        assert 0.0 < result.predicted_remaining_fraction(8) <= 1.0
        # Settings convert cleanly into hardware configuration registers.
        configs = settings_to_adc_configs(result.settings, resolution=8)
        assert set(configs) == {"a", "b", "c"}
        for config in configs.values():
            assert config.mode in (AdcMode.UNIFORM, AdcMode.TWIN_RANGE)

    def test_accuracy_loop_lowers_nmax_until_threshold(self, skewed_samples):
        calibrator = self._calibrator(accuracy_threshold=0.02, min_n_max=2)
        samples = {"layer": skewed_samples}

        # Synthetic oracle: accuracy degrades as the sensing bit budget drops.
        accuracy_by_nmax = {7: 0.90, 6: 0.90, 5: 0.895, 4: 0.87, 3: 0.80, 2: 0.70}
        calls = []

        def accuracy_fn(settings):
            bits = max(s.sensing_bits for s in settings.values())
            calls.append(bits)
            return accuracy_by_nmax[bits]

        result = calibrator.calibrate(samples, accuracy_fn=accuracy_fn, baseline_accuracy=0.90)
        # Nmax=4 drops accuracy by 0.03 > 0.02, so the accepted config is Nmax=5.
        assert result.n_max == 5
        assert result.final_accuracy == pytest.approx(0.895)
        assert len(result.accuracy_history) >= 3

    def test_accuracy_loop_keeps_first_config_if_it_already_violates(self, skewed_samples):
        calibrator = self._calibrator(accuracy_threshold=0.001)
        result = calibrator.calibrate(
            {"layer": skewed_samples},
            accuracy_fn=lambda settings: 0.5,
            baseline_accuracy=0.9,
        )
        assert result.n_max == 7
        assert result.final_accuracy == 0.5

    def test_validation(self, skewed_samples):
        calibrator = self._calibrator()
        with pytest.raises(ValueError):
            calibrator.calibrate({})
        with pytest.raises(ValueError):
            calibrator.calibrate({"a": skewed_samples}, accuracy_fn=lambda s: 1.0)
        with pytest.raises(ValueError):
            calibrator.calibrate_layer(np.array([]), n_max=4)
        with pytest.raises(ValueError):
            TwinRangeCalibrator(accuracy_threshold=-0.1)

    def test_layer_adc_setting_validation(self):
        with pytest.raises(ValueError):
            LayerAdcSetting(use_trq=True, trq=None)
        with pytest.raises(ValueError):
            LayerAdcSetting(use_trq=False, uniform_bits=None, uniform_delta=None)
        setting = LayerAdcSetting(use_trq=False, uniform_bits=5, uniform_delta=0.5)
        assert setting.sensing_bits == 5

    def test_uniform_adc_configs_helper(self, skewed_samples):
        configs = uniform_adc_configs({"a": skewed_samples}, bits=4, resolution=8)
        config = configs["a"]
        assert config.mode is AdcMode.UNIFORM and config.effective_uniform_bits == 4
        # Full scale of the 4-bit grid covers the observed maximum.
        delta = config.v_grid * (1 << (8 - 4))
        assert delta * 15 == pytest.approx(skewed_samples.max())
