"""Tests for the low-level tensor ops of the NumPy DNN framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Straightforward (slow) convolution used as the golden reference."""
    sh, sw = F.as_pair(stride)
    ph, pw = F.as_pair(padding)
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            for oi in range(oh):
                for oj in range(ow):
                    patch = xp[ni, :, oi * sh : oi * sh + kh, oj * sw : oj * sw + kw]
                    out[ni, fi, oi, oj] = np.sum(patch * w[fi])
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestGeometryHelpers:
    def test_as_pair(self):
        assert F.as_pair(3) == (3, 3)
        assert F.as_pair((2, 5)) == (2, 5)
        with pytest.raises(ValueError):
            F.as_pair((1, 2, 3))

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_pad_nchw_noop_and_value(self):
        x = np.ones((1, 1, 2, 2))
        assert F.pad_nchw(x, (0, 0)) is x
        padded = F.pad_nchw(x, (1, 2), value=7.0)
        assert padded.shape == (1, 1, 4, 6)
        assert padded[0, 0, 0, 0] == 7.0


class TestIm2Col:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), ((2, 1), (0, 1))])
    def test_conv_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 8, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _, _ = F.conv2d_forward(x, w, b, stride, padding)
        expected = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_im2col_shape_and_error(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols, (oh, ow) = F.im2col(x, 3, 1, 1)
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)
        assert (oh, ow) == (6, 6)
        with pytest.raises(ValueError):
            F.im2col(x[0], 3)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> -- the defining adjoint property."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols, _ = F.im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        xt = F.col2im(y, x.shape, 3, 2, 1)
        rhs = float(np.sum(x * xt))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            F.col2im(np.zeros((4, 4)), (1, 1, 6, 6), 3)


class TestConvBackward:
    def test_gradients_match_numerical(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, cols, _ = F.conv2d_forward(x, w, b, 1, 1)
        upstream = rng.normal(size=out.shape)
        grad_x, grad_w, grad_b = F.conv2d_backward(upstream, x.shape, cols, w, 1, 1)

        def loss(x_, w_, b_):
            o, _, _ = F.conv2d_forward(x_, w_, b_, 1, 1)
            return float(np.sum(o * upstream))

        eps = 1e-6
        # Spot-check a handful of coordinates for each gradient tensor.
        for idx in [(0, 0, 0, 0), (1, 1, 2, 3), (0, 1, 4, 4)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            numeric = (loss(xp, w, b) - loss(xm, w, b)) / (2 * eps)
            assert grad_x[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        for idx in [(0, 0, 0, 0), (2, 1, 1, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            numeric = (loss(x, wp, b) - loss(x, wm, b)) / (2 * eps)
            assert grad_w[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        numeric_b = (loss(x, w, b + np.array([eps, 0, 0])) - loss(x, w, b - np.array([eps, 0, 0]))) / (2 * eps)
        assert grad_b[0] == pytest.approx(numeric_b, rel=1e-4)


class TestLinear:
    def test_forward_and_backward(self, rng):
        x = rng.normal(size=(5, 7))
        w = rng.normal(size=(3, 7))
        b = rng.normal(size=3)
        out = F.linear_forward(x, w, b)
        np.testing.assert_allclose(out, x @ w.T + b)
        upstream = rng.normal(size=out.shape)
        gx, gw, gb = F.linear_backward(upstream, x, w)
        np.testing.assert_allclose(gx, upstream @ w)
        np.testing.assert_allclose(gw, upstream.T @ x)
        np.testing.assert_allclose(gb, upstream.sum(axis=0))


class TestPooling:
    def test_max_pool_forward_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        out, argmax, (oh, ow) = F.max_pool2d_forward(x, 2)
        assert out.shape == (2, 3, 3, 3)
        for n in range(2):
            for c in range(3):
                for i in range(3):
                    for j in range(3):
                        window = x[n, c, 2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
                        assert out[n, c, i, j] == window.max()

    def test_max_pool_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out, argmax, _ = F.max_pool2d_forward(x, 2)
        grad = np.ones_like(out)
        gx = F.max_pool2d_backward(grad, argmax, x.shape, 2)
        # Each window contributes gradient only at its max position.
        assert gx.sum() == pytest.approx(out.size)
        assert np.count_nonzero(gx) == out.size

    def test_avg_pool_forward_backward(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        out, _ = F.avg_pool2d_forward(x, 2)
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())
        gx = F.avg_pool2d_backward(np.ones_like(out), x.shape, 2)
        np.testing.assert_allclose(gx, np.full(x.shape, 0.25))


class TestSoftmaxAndOneHot:
    def test_softmax_rows_sum_to_one_and_stable(self):
        x = np.array([[1000.0, 1000.0, 999.0], [-5.0, 0.0, 5.0]])
        probs = F.softmax(x, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])
        assert np.all(np.isfinite(probs))

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x), atol=1e-12)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([[1]]), 3)
