"""Reusable fault-injection harness for the concurrency test suite."""
