"""Reusable fault-injection harness for store/executor concurrency tests.

Two halves:

* **Importable** — :class:`ChaosStore` (a ``ResultStore`` whose writer
  SIGKILLs *itself* at chosen points inside the commit protocol) and the
  chaos :class:`~repro.experiments.executors.Transport` subclasses
  (drop, kill, duplicate or delay dispatched shards).  Tests import these
  via ``from harness.chaos import ...``.
* **Executable** — ``python tests/harness/chaos.py <command> ...`` runs
  the subprocess entry points the multi-process tests drive (with
  ``PYTHONPATH=src``): ``storm`` hammers one store from an uncoordinated
  writer, ``sweep`` runs a tiny real sweep against a ChaosStore, and
  ``hash`` recomputes job keys from (possibly shuffled) spec dicts read
  on stdin.

The kill points mirror the store's staged-commit protocol
(:meth:`ResultStore.save`):

``mid_tmp``
    Die while writing a staging temp file — leaves a *torn* temp with
    this pid in its name, never a torn artifact.
``pre_commit``
    Stage complete temps for the JSON/NPZ pair, die before taking the
    lock — leaves complete-but-uncommitted temps for
    :meth:`ResultStore.sweep_stale_tmps`.
``torn_pair``
    Die *inside the locked commit*, after the NPZ sibling is published
    but before its JSON completion marker — the worst instant: proves
    readers never see a JSON document without its arrays, and that the
    ``fcntl`` lock dies with its holder instead of wedging the store.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.executors import LocalSubprocessTransport
from repro.experiments.spec import JobSpec, NoiseScenario, SweepSpec, WorkloadSpec
from repro.experiments.store import ResultStore, _stage_tmp, job_key

KILL_POINTS = ("mid_tmp", "pre_commit", "torn_pair")


# --------------------------------------------------------------------- #
# ChaosStore: SIGKILL inside the commit protocol
# --------------------------------------------------------------------- #
class ChaosStore(ResultStore):
    """A store whose writing process kills itself at a chosen commit point.

    ``kill_point`` is one of :data:`KILL_POINTS`; ``kill_on_key`` narrows
    the kill to one artifact (``None``: the first qualifying save).
    SIGKILL (not an exception) on purpose — nothing unwinds, no
    ``finally`` runs, exactly like the OOM killer or a lost host.
    """

    def __init__(
        self,
        root,
        kill_point: Optional[str] = None,
        kill_on_key: Optional[str] = None,
    ) -> None:
        super().__init__(root)
        if kill_point is not None and kill_point not in KILL_POINTS:
            raise ValueError(f"unknown kill point {kill_point!r}")
        self.kill_point = kill_point
        self.kill_on_key = kill_on_key

    def _armed(self, key: str) -> bool:
        return self.kill_point is not None and (
            self.kill_on_key is None or key == self.kill_on_key
        )

    def save(self, key, payload, arrays=None):
        if self._armed(key):
            if self.kill_point == "mid_tmp":
                path = self.json_path(key)
                torn = path.with_name(f".{path.name}.tmp-{os.getpid()}-0")
                torn.write_bytes(b'{"torn": tru')  # a half-written temp
                os.kill(os.getpid(), signal.SIGKILL)
            if self.kill_point == "pre_commit":
                text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
                if arrays:
                    _stage_tmp(
                        self.npz_path(key),
                        lambda handle: np.savez_compressed(handle, **arrays),
                    )
                _stage_tmp(
                    self.json_path(key),
                    lambda handle: handle.write(text.encode("utf-8")),
                )
                os.kill(os.getpid(), signal.SIGKILL)
        return super().save(key, payload, arrays)

    def _commit(self, tmp, path):
        super()._commit(tmp, path)
        if (
            self.kill_point == "torn_pair"
            and path.suffix == ".npz"
            and self._armed(path.stem)
        ):
            # The NPZ sibling just published; its JSON completion marker
            # has not — die holding the store lock.
            os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------- #
# Chaos transports: drop / kill / duplicate / delay dispatched shards
# --------------------------------------------------------------------- #
class CountingTransport(LocalSubprocessTransport):
    """A local transport that records every submitted command."""

    name = "counting"

    def __init__(self) -> None:
        self.submissions: List[List[str]] = []

    def submit(self, command, stderr_path, env):
        self.submissions.append(list(command))
        return super().submit(command, stderr_path, env)


class DroppingTransport(CountingTransport):
    """Loses the first ``drop`` submissions: the dispatched command is
    replaced by an immediate non-zero exit that produces no result file —
    a shard that simply never came back."""

    name = "dropping"

    def __init__(self, drop: int = 1) -> None:
        super().__init__()
        self.drop = drop
        self.dropped = 0

    def submit(self, command, stderr_path, env):
        if self.dropped < self.drop:
            self.dropped += 1
            self.submissions.append(list(command))
            with open(stderr_path, "wb") as stderr_handle:
                return subprocess.Popen(
                    [sys.executable, "-c", "import sys; sys.exit(13)"],
                    stdout=subprocess.DEVNULL, stderr=stderr_handle,
                )
        return super().submit(command, stderr_path, env)


class KillingTransport(CountingTransport):
    """Runs the real command but SIGKILLs the first ``kill`` submissions
    after ``delay_s`` — a worker host dying mid-shard, staged writes and
    all."""

    name = "killing"

    def __init__(self, kill: int = 1, delay_s: float = 0.5) -> None:
        super().__init__()
        self.kill = kill
        self.delay_s = delay_s
        self.killed = 0

    def submit(self, command, stderr_path, env):
        proc = super().submit(command, stderr_path, env)
        if self.killed < self.kill:
            self.killed += 1
            timer = threading.Timer(self.delay_s, proc.kill)
            timer.daemon = True
            timer.start()
        return proc


class DuplicatingTransport(CountingTransport):
    """Every submission also launches an unsupervised shadow duplicate of
    the same shard (with its own result/stderr paths) against the same
    worker store — two uncoordinated writers per shard, always."""

    name = "duplicating"

    def __init__(self) -> None:
        super().__init__()
        self.duplicates: List[subprocess.Popen] = []

    def submit(self, command, stderr_path, env):
        shadow = list(command)
        result_index = shadow.index("--result") + 1
        shadow[result_index] = shadow[result_index] + ".shadow"
        shadow_stderr = Path(str(stderr_path) + ".shadow")
        with open(shadow_stderr, "wb") as handle:
            self.duplicates.append(
                subprocess.Popen(
                    shadow, env=env,
                    stdout=subprocess.DEVNULL, stderr=handle,
                )
            )
        return super().submit(command, stderr_path, env)

    def close(self) -> None:
        for proc in self.duplicates:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.duplicates:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
        self.duplicates = []


class DelayingTransport(CountingTransport):
    """Turns chosen submissions into stragglers: submission number
    ``delay_submission`` (0-based, in submit order) sleeps ``delay_s``
    before running the real command."""

    name = "delaying"

    def __init__(self, delay_submission: int, delay_s: float) -> None:
        super().__init__()
        self.delay_submission = delay_submission
        self.delay_s = delay_s

    def submit(self, command, stderr_path, env):
        if len(self.submissions) == self.delay_submission:
            command = [
                sys.executable, "-c",
                "import subprocess, sys, time; time.sleep(float(sys.argv[1])); "
                "sys.exit(subprocess.call(sys.argv[2:]))",
                str(self.delay_s), *command,
            ]
        return super().submit(command, stderr_path, env)


# --------------------------------------------------------------------- #
# Deterministic storm workload (shared by workers and assertions)
# --------------------------------------------------------------------- #
def storm_key(item: int) -> str:
    return hashlib.sha256(f"storm-item-{item}".encode()).hexdigest()


def storm_payload(item: int) -> Dict[str, object]:
    return {
        "key": storm_key(item),
        "row": {"item": item, "value": item * item},
        "blob": "x" * (64 + item),
    }


def storm_arrays(item: int) -> Optional[Dict[str, np.ndarray]]:
    """Even items carry an NPZ sibling (so kills can tear the pair)."""
    if item % 2:
        return None
    return {"data": np.arange(item + 3, dtype=np.float64) * 0.5}


def write_storm(store: ResultStore, items: int, seed: int) -> None:
    """Save every storm item in a per-writer shuffled order.

    Every writer stages *identical bytes* per key — the content-addressed
    contract the first-writer-wins commit relies on.
    """
    order = list(range(items))
    random.Random(seed).shuffle(order)
    for item in order:
        store.save(storm_key(item), storm_payload(item), storm_arrays(item))


# --------------------------------------------------------------------- #
# A tiny real sweep (for crash-resume under a real runner)
# --------------------------------------------------------------------- #
TINY = WorkloadSpec(
    "lenet5", preset="tiny", train_size=48, test_size=16,
    calibration_images=8, epochs=2, seed=11,
)


def tiny_mc_sweep(name: str = "chaos-sweep") -> SweepSpec:
    """A shared clean reference + four Monte Carlo grid points."""
    return SweepSpec(
        name=name,
        kind="monte_carlo",
        workloads=[TINY],
        noises=[
            NoiseScenario(label={"sigma": 0.0}),
            NoiseScenario(
                models=[{"model": "gaussian_read_noise", "sigma": 0.5}],
                label={"sigma": 0.5},
            ),
        ],
        mc_seeds=[0, 1],
        trials=2,
        images=4,
        batch_size=4,
    )


def tiny_flat_sweep(name: str = "chaos-flat") -> SweepSpec:
    """Four dependency-free forward-pass jobs (one wave, cheap)."""
    jobs = [
        JobSpec(kind="evaluate", workload=TINY, images=images,
                datapath=datapath, label={"config": f"{datapath}/{images}"})
        for images in (4, 8)
        for datapath in ("float", "fakequant")
    ]
    return SweepSpec(name=name, kind="mixed", explicit_jobs=jobs)


# --------------------------------------------------------------------- #
# Subprocess entry points
# --------------------------------------------------------------------- #
def _cmd_storm(args: argparse.Namespace) -> int:
    kill_key = storm_key(args.kill_item) if args.kill_item is not None else None
    store = ChaosStore(args.store, kill_point=args.kill, kill_on_key=kill_key)
    write_storm(store, args.items, args.seed)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_sweep

    store = ChaosStore(args.store, kill_point=args.kill)
    run_sweep(tiny_mc_sweep(), store, weights_cache_dir=args.cache)
    return 0


def _cmd_hash(args: argparse.Namespace) -> int:
    """Recompute job keys from spec dicts read on stdin (one JSON list)."""
    for spec_dict in json.loads(sys.stdin.read()):
        print(job_key(JobSpec.from_dict(spec_dict)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    storm = sub.add_parser("storm", help="one uncoordinated storm writer")
    storm.add_argument("store", type=Path)
    storm.add_argument("--items", type=int, default=12)
    storm.add_argument("--seed", type=int, default=0)
    storm.add_argument("--kill", choices=KILL_POINTS, default=None)
    storm.add_argument("--kill-item", type=int, default=None)
    storm.set_defaults(func=_cmd_storm)

    sweep = sub.add_parser("sweep", help="run the tiny MC sweep (chaos store)")
    sweep.add_argument("store", type=Path)
    sweep.add_argument("--cache", required=True)
    sweep.add_argument("--kill", choices=KILL_POINTS, default=None)
    sweep.set_defaults(func=_cmd_sweep)

    hash_cmd = sub.add_parser("hash", help="job keys of spec dicts on stdin")
    hash_cmd.set_defaults(func=_cmd_hash)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
