"""Tests for the PIM simulator: capture, backend, end-to-end evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import uniform_config, twin_range_config
from repro.core import TRQParams, uniform_adc_configs
from repro.quantization import FakeQuantBackend, attach_backend, detach_backend, quantize_model
from repro.sim import (
    DistributionCollector,
    GaussianReadNoise,
    NoNoise,
    PimSimulator,
    ProportionalConductanceNoise,
    ReservoirSampler,
)
from repro.sim.stats import LayerSimStats, SimulationResult


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #
class TestCapture:
    def test_reservoir_keeps_everything_below_capacity(self, rng):
        sampler = ReservoirSampler(capacity=1000, seed=0)
        data = rng.normal(size=500)
        sampler.add(data)
        np.testing.assert_array_equal(np.sort(sampler.values), np.sort(data))
        assert len(sampler) == 500 and sampler.total_seen == 500

    def test_reservoir_bounds_memory_and_subsamples(self, rng):
        sampler = ReservoirSampler(capacity=500, seed=0)
        for _ in range(20):
            sampler.add(rng.normal(size=400))
        assert len(sampler) <= 500
        assert sampler.total_seen == 8000
        assert sampler.values.size == len(sampler)

    def test_reservoir_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)
        sampler = ReservoirSampler(capacity=10)
        sampler.add(np.array([]))
        assert sampler.values.size == 0

    def test_collector_routes_by_layer(self, rng):
        collector = DistributionCollector(capacity_per_layer=100, seed=0)
        with pytest.raises(RuntimeError):
            collector(np.ones(3))
        collector.set_layer("a")
        collector(np.ones(5))
        collector.set_layer("b")
        collector(np.zeros(3))
        collector.set_layer("a")
        collector(2 * np.ones(2))
        assert set(collector.layer_names) == {"a", "b"}
        assert collector.samples("a").size == 7
        assert collector.total_seen("a") == 7
        assert collector.total_seen("missing") == 0
        with pytest.raises(KeyError):
            collector.samples("missing")
        assert set(collector.all_samples()) == {"a", "b"}


# --------------------------------------------------------------------- #
# noise models
# --------------------------------------------------------------------- #
class TestNoise:
    def test_no_noise_is_identity(self, rng):
        values = rng.uniform(0, 10, size=50)
        np.testing.assert_array_equal(NoNoise().apply(values), values)

    def test_gaussian_noise_perturbs_but_stays_non_negative(self, rng):
        noise = GaussianReadNoise(sigma_levels=1.0, seed=0)
        values = rng.uniform(0, 5, size=1000)
        noisy = noise.apply(values)
        assert not np.array_equal(noisy, values)
        assert noisy.min() >= 0.0
        assert GaussianReadNoise(0.0).apply(values) is values

    def test_proportional_noise(self, rng):
        noise = ProportionalConductanceNoise(sigma=0.05, seed=0)
        values = rng.uniform(1, 100, size=500)
        noisy = noise.apply(values)
        rel = np.abs(noisy - values) / values
        assert 0.0 < rel.mean() < 0.2
        with pytest.raises(ValueError):
            ProportionalConductanceNoise(-0.1)


# --------------------------------------------------------------------- #
# backend + simulator (uses the shared trained LeNet workload)
# --------------------------------------------------------------------- #
class TestSimulator:
    def test_ideal_pim_matches_fake_quant_reference(self, lenet_workload, lenet_eval_data):
        """With an ideal ADC, the crossbar datapath must equal plain 8/8
        fake-quantized inference (the bit-sliced merge is exact)."""
        images, labels = lenet_eval_data
        images = images[:16]
        quantized = lenet_workload.quantized
        model = lenet_workload.model

        result = lenet_workload.simulator.evaluate(images, labels[:16], None, batch_size=8)

        backend = FakeQuantBackend(quantized)
        attach_backend(model, backend)
        try:
            model.eval()
            reference_logits = model(images)
        finally:
            detach_backend(model)
        # Bias handling and dequantization differ only by float rounding.
        np.testing.assert_allclose(result.logits, reference_logits, rtol=1e-6, atol=1e-8)

    def test_layer_stats_are_populated(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        result = lenet_workload.simulator.evaluate(images[:8], labels[:8], None, batch_size=8)
        assert set(result.layer_stats) == set(lenet_workload.simulator.layer_names())
        for stats in result.layer_stats.values():
            assert stats.conversions > 0
            assert stats.operations == stats.conversions * 8  # ideal = baseline ops
            assert stats.mvm_count > 0
        assert result.remaining_ops_fraction == pytest.approx(1.0)
        assert result.summary()["accuracy"] == result.accuracy

    def test_uniform_adc_configs_change_ops_and_accuracy(self, lenet_workload,
                                                         lenet_eval_data,
                                                         lenet_bitline_samples):
        images, labels = lenet_eval_data
        sim = lenet_workload.simulator
        low_bit = sim.evaluate(
            images[:16], labels[:16],
            uniform_adc_configs(lenet_bitline_samples, bits=3),
            batch_size=8,
        )
        assert low_bit.remaining_ops_fraction == pytest.approx(3 / 8)
        assert low_bit.total_operations == 3 * low_bit.total_conversions

    def test_trq_configs_reduce_ops(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        sim = lenet_workload.simulator
        params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0)
        configs = {name: twin_range_config(params) for name in sim.layer_names()}
        result = sim.evaluate(images[:16], labels[:16], configs, batch_size=8)
        assert result.remaining_ops_fraction < 1.0
        assert result.ops_reduction_factor > 1.0
        # Some conversions must land in each region for a realistic layer.
        total_r1 = sum(s.in_r1 for s in result.layer_stats.values())
        total_r2 = sum(s.in_r2 for s in result.layer_stats.values())
        assert total_r1 > 0 and total_r2 > 0

    def test_noise_degrades_or_preserves_accuracy_but_runs(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        sim = lenet_workload.simulator
        result = sim.evaluate(images[:8], labels[:8], None, batch_size=8,
                              noise=GaussianReadNoise(sigma_levels=0.5, seed=0))
        assert 0.0 <= result.accuracy <= 1.0

    def test_collect_bitline_distributions(self, lenet_workload, lenet_bitline_samples):
        assert set(lenet_bitline_samples) == set(lenet_workload.simulator.layer_names())
        for samples in lenet_bitline_samples.values():
            assert samples.size > 0
            assert samples.min() >= 0.0
            # Integer partial sums (1-bit operands): all values are integers.
            np.testing.assert_allclose(samples, np.round(samples))

    def test_accuracy_evaluator_closure(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        evaluator = lenet_workload.simulator.accuracy_evaluator(images[:8], labels[:8], batch_size=8)
        assert 0.0 <= evaluator(None) <= 1.0

    def test_mapping_summary(self, lenet_workload):
        footprints = lenet_workload.simulator.mapping_summary()
        assert set(footprints) == set(lenet_workload.simulator.layer_names())
        assert all(f.conversions_per_mvm > 0 for f in footprints.values())

    def test_batch_size_invariance(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        sim = lenet_workload.simulator
        a = sim.evaluate(images[:12], labels[:12], None, batch_size=4)
        b = sim.evaluate(images[:12], labels[:12], None, batch_size=12)
        np.testing.assert_allclose(a.logits, b.logits, rtol=1e-9)
        assert a.total_conversions == b.total_conversions


# --------------------------------------------------------------------- #
# stats containers
# --------------------------------------------------------------------- #
class TestStats:
    def test_layer_stats_fractions(self):
        stats = LayerSimStats(name="l", kind="conv", conversions=100, operations=400)
        assert stats.mean_ops_per_conversion == 4.0
        assert stats.remaining_fraction(8) == 0.5
        empty = LayerSimStats(name="e", kind="conv")
        assert empty.mean_ops_per_conversion == 0.0
        assert empty.remaining_fraction(8) == 0.0

    def test_simulation_result_aggregation(self):
        layers = {
            "a": LayerSimStats(name="a", kind="conv", conversions=10, operations=40),
            "b": LayerSimStats(name="b", kind="linear", conversions=10, operations=80),
        }
        result = SimulationResult(accuracy=0.9, num_images=4, layer_stats=layers,
                                  baseline_ops_per_conversion=8)
        assert result.total_conversions == 20
        assert result.total_operations == 120
        assert result.mean_ops_per_conversion == 6.0
        assert result.remaining_ops_fraction == pytest.approx(0.75)
        assert result.ops_reduction_factor == pytest.approx(1 / 0.75)
        per_layer = result.per_layer_remaining_fraction()
        assert per_layer["a"] == pytest.approx(0.5)
