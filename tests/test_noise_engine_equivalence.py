"""Fast-vs-reference engine equivalence under device noise.

PR 1 established bit-identity of the two engines for deterministic
converters; noisy runs used to diverge because ``_NoisyAdcWrapper`` fed both
engines from one mutable RNG stream in different block orders.  The
counter-based keyed sampling of :mod:`repro.nonideal` removes that defect,
and these tests pin the strengthened contract: with **any** registered noise
model (and compositions thereof), ``engine="fast"`` and
``engine="reference"`` produce bit-identical outputs and identical
A/D-operation and region statistics — at the mapped-layer level (fuzzed over
model parameters, seeds and ADC configurations), across chunked calls, and
end-to-end through :class:`repro.sim.PimSimulator` including
``run_monte_carlo`` reproducibility.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import NonUniformAdc, TwinRangeAdc, UniformAdc, twin_range_config, uniform_config
from repro.core import TRQParams
from repro.crossbar import MappedMVMLayer
from repro.nonideal import (
    ConductanceVariation,
    GaussianReadNoise,
    IRDropAttenuation,
    NonIdealityStack,
    RetentionDrift,
    StuckAtFaults,
)
from repro.sim import PimSimulator

TRQ = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=0.9, bias=1)

STACK_RECIPES = {
    "gaussian": [GaussianReadNoise(sigma=0.6)],
    "gaussian_relative": [GaussianReadNoise(sigma=0.02, relative=True)],
    "variation": [ConductanceVariation(sigma=0.08)],
    "variation_quantized": [ConductanceVariation(sigma=0.08, quantize=True)],
    "stuck_at": [StuckAtFaults(rate_on=0.01, rate_off=0.02)],
    "drift": [RetentionDrift(time=50.0, nu=0.08)],
    "ir_drop": [IRDropAttenuation(alpha=0.15)],
    "integer_composite": [
        ConductanceVariation(sigma=0.05, quantize=True),
        StuckAtFaults(rate_on=0.005),
        RetentionDrift(time=10.0, nu=0.05),
    ],
    "continuous_composite": [
        ConductanceVariation(sigma=0.05),
        StuckAtFaults(rate_on=0.005),
        IRDropAttenuation(alpha=0.1),
        GaussianReadNoise(sigma=0.4),
    ],
}

ADC_FACTORIES = {
    "twin_range": lambda: TwinRangeAdc(TRQ),
    "uniform": lambda: UniformAdc(bits=5, delta=2.5),
    "ideal": lambda: None,
}


def _assert_engines_agree_with_noise(layer, inputs, make_adc, stack, chunks=1):
    """Run both engines over the same chunk sequence and require bit-parity."""
    outputs, ops, stats = {}, {}, {}
    for engine in ("reference", "fast"):
        adc = make_adc()
        state = stack.bind_mapped("layer", layer)
        merged_chunks = []
        total_ops = 0
        per_chunk = -(-inputs.shape[0] // chunks)
        for start in range(0, inputs.shape[0], per_chunk):
            state.next_chunk()
            merged, chunk_ops = layer.matmul(
                inputs[start : start + per_chunk], adc=adc, engine=engine, noise=state
            )
            merged_chunks.append(merged)
            total_ops += chunk_ops
        outputs[engine] = np.concatenate(merged_chunks, axis=0)
        ops[engine] = total_ops
        stats[engine] = getattr(adc, "stats", None)
    np.testing.assert_array_equal(outputs["reference"], outputs["fast"])
    assert ops["reference"] == ops["fast"]
    assert stats["reference"] == stats["fast"]
    return outputs["reference"]


@pytest.fixture(scope="module")
def small_layer():
    rng = np.random.default_rng(42)
    return MappedMVMLayer(rng.integers(-127, 128, size=(200, 5)))


@pytest.fixture(scope="module")
def small_inputs():
    return np.random.default_rng(43).integers(0, 256, size=(12, 200))


class TestMappedLayerNoiseEquivalence:
    @pytest.mark.parametrize("adc_kind", sorted(ADC_FACTORIES))
    @pytest.mark.parametrize("stack_name", sorted(STACK_RECIPES))
    def test_bit_identical_under_every_model(
        self, small_layer, small_inputs, stack_name, adc_kind
    ):
        stack = NonIdealityStack(STACK_RECIPES[stack_name], seed=7)
        _assert_engines_agree_with_noise(
            small_layer, small_inputs, ADC_FACTORIES[adc_kind], stack
        )

    def test_bit_identical_across_chunked_calls(self, small_layer, small_inputs):
        """The chunk counter keys fresh noise per chunk; both engines chunk
        identically, so multi-chunk executions must stay bit-identical too
        — and differ from the single-chunk execution (fresh draws)."""
        stack = NonIdealityStack([GaussianReadNoise(sigma=0.6)], seed=7)
        whole = _assert_engines_agree_with_noise(
            small_layer, small_inputs, ADC_FACTORIES["twin_range"], stack, chunks=1
        )
        split = _assert_engines_agree_with_noise(
            small_layer, small_inputs, ADC_FACTORIES["twin_range"], stack, chunks=3
        )
        assert not np.array_equal(whole, split)

    def test_noisy_nonuniform_adc_bit_identical(self, rng):
        """Converters without a level grid use the element-wise fallback;
        keyed noise must keep them bit-identical as well."""
        from repro.quantization import QuantizationConfig

        layer = MappedMVMLayer(rng.integers(-7, 8, size=(30, 4)),
                               QuantizationConfig(weight_bits=4, activation_bits=4))
        inputs = rng.integers(0, 16, size=(9, 30))
        grid = np.unique(rng.uniform(0.0, layer.max_bitline_value + 1.0, size=13))
        stack = NonIdealityStack([GaussianReadNoise(sigma=0.3)], seed=1)
        _assert_engines_agree_with_noise(layer, inputs, lambda: NonUniformAdc(grid), stack)

    def test_pure_value_map_uses_composed_lut(self, small_layer, small_inputs):
        """A drift-only stack must keep the fast engine's LUT path (the
        perturbed-AdcTransferLut integration), not the element-wise
        fallback: its composed value map exists and the converted stats
        still match the reference loop exactly."""
        stack = NonIdealityStack([RetentionDrift(time=50.0, nu=0.08)], seed=0)
        state = stack.bind_mapped("layer", small_layer)
        assert state.integer_domain
        assert state.pure_value_map() is not None
        _assert_engines_agree_with_noise(
            small_layer, small_inputs, ADC_FACTORIES["twin_range"], stack
        )

    @given(
        sigma=st.floats(min_value=0.0, max_value=2.0),
        rate_on=st.floats(min_value=0.0, max_value=0.05),
        quantize=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
        bias=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzz_random_stacks_and_params(self, sigma, rate_on, quantize, seed, bias):
        rng = np.random.default_rng(seed)
        layer = MappedMVMLayer(rng.integers(-31, 32, size=(60, 3)))
        inputs = rng.integers(0, 256, size=(5, 60))
        stack = NonIdealityStack(
            [
                ConductanceVariation(sigma=sigma * 0.1, quantize=quantize),
                StuckAtFaults(rate_on=rate_on),
                GaussianReadNoise(sigma=sigma),
            ],
            seed=seed,
        )
        params = TRQParams(n_r1=2, n_r2=5, m=2, delta_r1=1.0, bias=bias)
        _assert_engines_agree_with_noise(
            layer, inputs, lambda: TwinRangeAdc(params), stack
        )


class TestSimulatorNoiseEquivalence:
    @pytest.fixture(scope="class")
    def noisy_configs(self, lenet_workload):
        names = lenet_workload.simulator.layer_names()
        return {
            name: twin_range_config(TRQParams(n_r1=2, n_r2=5, m=3))
            if index % 2 == 0
            else uniform_config(resolution=8, bits=4)
            for index, name in enumerate(names)
        }

    def test_end_to_end_noisy_bit_identical(
        self, lenet_workload, lenet_eval_data, noisy_configs
    ):
        images, labels = lenet_eval_data
        images, labels = images[:8], labels[:8]
        stack = NonIdealityStack(
            [
                ConductanceVariation(sigma=0.05),
                StuckAtFaults(rate_on=1e-3),
                GaussianReadNoise(sigma=0.5),
            ],
            seed=3,
        )
        results = {}
        for engine in ("reference", "fast"):
            sim = PimSimulator(lenet_workload.quantized, engine=engine)
            results[engine] = sim.evaluate(
                images, labels, noisy_configs, batch_size=4, noise=stack
            )
        ref, fast = results["reference"], results["fast"]
        np.testing.assert_array_equal(ref.logits, fast.logits)
        for name in ref.layer_stats:
            a, b = ref.layer_stats[name], fast.layer_stats[name]
            assert (a.conversions, a.operations, a.in_r1, a.in_r2) == (
                b.conversions, b.operations, b.in_r1, b.in_r2
            ), name

    def test_legacy_fidelity_shim_is_now_bit_identical(
        self, lenet_workload, lenet_eval_data
    ):
        """Satellite regression: the deprecated fidelity classes used to put
        noisy runs on divergent RNG orderings between engines; routed through
        the keyed subsystem they must now match exactly."""
        from repro.sim import GaussianReadNoise as LegacyGaussian

        from repro.utils.warnings import reset_warn_once_registry

        images, labels = lenet_eval_data
        images, labels = images[:6], labels[:6]
        logits = {}
        for engine in ("reference", "fast"):
            reset_warn_once_registry()  # the shim warns once per process
            with pytest.warns(DeprecationWarning):
                noise = LegacyGaussian(sigma_levels=0.5, seed=0)
            sim = PimSimulator(lenet_workload.quantized, engine=engine)
            logits[engine] = sim.evaluate(
                images, labels, None, batch_size=3, noise=noise
            ).logits
        np.testing.assert_array_equal(logits["reference"], logits["fast"])

    def test_noisy_run_is_reproducible_and_distinct(
        self, lenet_workload, lenet_eval_data, noisy_configs
    ):
        images, labels = lenet_eval_data
        images, labels = images[:6], labels[:6]
        sim = PimSimulator(lenet_workload.quantized)
        stack = NonIdealityStack([GaussianReadNoise(sigma=0.8)], seed=5)
        a = sim.evaluate(images, labels, noisy_configs, batch_size=3, noise=stack)
        b = sim.evaluate(images, labels, noisy_configs, batch_size=3, noise=stack)
        np.testing.assert_array_equal(a.logits, b.logits)
        clean = sim.evaluate(images, labels, noisy_configs, batch_size=3)
        assert not np.array_equal(a.logits, clean.logits)

    def test_monte_carlo_reproduces_exactly_under_fixed_seed(
        self, lenet_workload, lenet_eval_data, noisy_configs
    ):
        images, labels = lenet_eval_data
        images, labels = images[:6], labels[:6]
        sim = PimSimulator(lenet_workload.quantized)
        stack = NonIdealityStack(
            [GaussianReadNoise(sigma=0.5), StuckAtFaults(rate_on=1e-3)], seed=0
        )
        kwargs = dict(adc_configs=noisy_configs, trials=3, batch_size=3, seed=11)
        first = sim.run_monte_carlo(images, labels, stack, **kwargs)
        second = sim.run_monte_carlo(images, labels, stack, **kwargs)
        np.testing.assert_array_equal(first.accuracies, second.accuracies)
        np.testing.assert_array_equal(first.flip_rates, second.flip_rates)
        assert first.layer_stats.keys() == second.layer_stats.keys()
        for name in first.layer_stats:
            assert first.layer_stats[name] == second.layer_stats[name]

    def test_monte_carlo_zero_noise_matches_clean(
        self, lenet_workload, lenet_eval_data
    ):
        images, labels = lenet_eval_data
        images, labels = images[:6], labels[:6]
        sim = PimSimulator(lenet_workload.quantized)
        stack = NonIdealityStack(
            [GaussianReadNoise(sigma=0.0), StuckAtFaults()], seed=0
        )
        result = sim.run_monte_carlo(images, labels, stack, trials=2, batch_size=3)
        assert result.mean_accuracy == result.clean_accuracy
        assert result.std_accuracy == 0.0
        assert result.mean_flip_rate == 0.0

    def test_monte_carlo_requires_noise(self, lenet_workload, lenet_eval_data):
        images, labels = lenet_eval_data
        sim = PimSimulator(lenet_workload.quantized)
        with pytest.raises(ValueError):
            sim.run_monte_carlo(images[:2], labels[:2], None, trials=1)
        from repro.sim import NoNoise

        with pytest.raises(ValueError):
            sim.run_monte_carlo(images[:2], labels[:2], NoNoise(), trials=1)

    def test_monte_carlo_rejects_legacy_noise_objects(
        self, lenet_workload, lenet_eval_data
    ):
        """A legacy apply-protocol object owns one mutable RNG stream, so its
        trials would be neither independent nor seed-reproducible — MC must
        refuse it instead of silently breaking its contract."""

        class OldStyle:
            def apply(self, values):
                return values

        images, labels = lenet_eval_data
        sim = PimSimulator(lenet_workload.quantized)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="keyed repro.nonideal models"):
                sim.run_monte_carlo(images[:2], labels[:2], OldStyle(), trials=1)
