"""Property-style fuzz: vectorised ADCs vs the cycle-accurate SAR searches.

Ports the ad-hoc fuzz used while validating the fast-engine work into the
suite.  The vectorised :class:`~repro.adc.uniform.UniformAdc` and
:class:`~repro.adc.trq.TwinRangeAdc` must agree with the step-by-step SAR
models on randomized parameters — including the exact region-boundary values
``r1_low``, ``r1_high`` and ``r2_max``, negative inputs (physically
impossible at a bit line, but the models must still agree on them: with
``bias == 0`` the single detection comparison sends everything below ``θ``
through the dense range) and overflow inputs beyond full scale.

Deltas are drawn from a grid of exactly-representable steps and inputs are
integers or exact threshold multiples, so value agreement is required to be
*exact*, not just close.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import SarAdc, TwinRangeAdc, TwinRangeSarAdc, UniformAdc
from repro.core import TRQParams

#: Step sizes with exact binary representations (including a non-power-of-two)
#: so float comparisons against SAR thresholds cannot straddle a rounding edge.
DELTAS = (0.25, 0.5, 1.0, 2.0, 3.0)


def _uniform_inputs(rng: np.random.Generator, bits: int, delta: float) -> np.ndarray:
    full_scale = ((1 << bits) - 1) * delta
    integers = rng.integers(-8, int(full_scale) + 16, size=40).astype(np.float64)
    midpoints = (rng.integers(0, 1 << bits, size=8).astype(np.float64) + 0.5) * delta
    edges = np.array([-delta, 0.0, full_scale, full_scale + delta])
    return np.concatenate([integers, midpoints, edges])


class TestUniformFuzz:
    @given(
        bits=st.integers(min_value=1, max_value=8),
        delta=st.sampled_from(DELTAS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_cycle_accurate_exactly(self, bits, delta, seed):
        rng = np.random.default_rng(seed)
        values = _uniform_inputs(rng, bits, delta)
        vectorised = UniformAdc(bits, delta)
        quantized, total_ops = vectorised.convert(values)
        traces = [SarAdc(bits, delta).convert(v) for v in values]
        np.testing.assert_array_equal(quantized, [t.output_value for t in traces])
        assert total_ops == sum(t.operations for t in traces)

    @given(
        bits=st.integers(min_value=1, max_value=8),
        delta=st.sampled_from(DELTAS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_lut_convert_codes_matches_cycle_accurate(self, bits, delta, seed):
        """Integer-domain LUT conversion == per-element SAR search."""
        rng = np.random.default_rng(seed)
        max_value = int(((1 << bits) - 1) * delta) + 3
        codes = rng.integers(0, max_value + 1, size=50)
        quantized, total_ops = UniformAdc(bits, delta).convert_codes(codes, max_value)
        traces = [SarAdc(bits, delta).convert(float(v)) for v in codes]
        np.testing.assert_array_equal(quantized, [t.output_value for t in traces])
        assert total_ops == sum(t.operations for t in traces)


def _trq_inputs(rng: np.random.Generator, params: TRQParams) -> np.ndarray:
    top = max(params.r2_max, params.r1_high)
    integers = rng.integers(-4, int(top) + 8, size=40).astype(np.float64)
    boundaries = np.array([
        params.r1_low, params.r1_high, params.r2_max,
        params.r1_low - params.delta_r1, params.r1_high + params.delta_r1,
        params.r2_max + params.delta_r2,
        -params.delta_r1, 0.0,
    ])
    return np.concatenate([integers, boundaries])


class TestTwinRangeFuzz:
    @given(
        n_r1=st.integers(min_value=1, max_value=6),
        n_r2=st.integers(min_value=1, max_value=7),
        m=st.integers(min_value=0, max_value=5),
        bias=st.integers(min_value=0, max_value=3),
        delta=st.sampled_from(DELTAS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_cycle_accurate_exactly(self, n_r1, n_r2, m, bias, delta, seed):
        params = TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=delta, bias=bias)
        rng = np.random.default_rng(seed)
        values = _trq_inputs(rng, params)

        vectorised = TwinRangeAdc(params)
        quantized, total_ops = vectorised.convert(values)
        traces = [TwinRangeSarAdc(params).convert(v) for v in values]

        np.testing.assert_array_equal(quantized, [t.output_value for t in traces])
        assert total_ops == sum(t.operations for t in traces)
        # Region decisions must agree sample by sample, not just in aggregate.
        np.testing.assert_array_equal(
            vectorised.region_mask(values), [t.in_r1 for t in traces]
        )
        assert vectorised.stats.in_r1 == sum(t.in_r1 for t in traces)
        assert vectorised.stats.detection_operations == sum(
            t.detection_operations for t in traces
        )

    def test_negative_inputs_follow_hardware_detection(self):
        """With ``bias == 0`` the detection phase is a single comparison
        against ``θ``, so negative inputs resolve in R1; a biased window
        checks the lower edge too and sends them to R2."""
        unbiased = TRQParams(n_r1=2, n_r2=5, m=2, delta_r1=1.0, bias=0)
        biased = TRQParams(n_r1=2, n_r2=5, m=2, delta_r1=1.0, bias=1)
        values = np.array([-3.0, -0.5])
        for params, expect_r1 in ((unbiased, True), (biased, False)):
            adc = TwinRangeAdc(params)
            quantized, _ = adc.convert(values)
            traces = [TwinRangeSarAdc(params).convert(v) for v in values]
            np.testing.assert_array_equal(quantized, [t.output_value for t in traces])
            assert all(t.in_r1 == expect_r1 for t in traces)
            np.testing.assert_array_equal(adc.region_mask(values),
                                          [expect_r1, expect_r1])

    def test_overflow_clamps_to_r2_full_scale(self):
        params = TRQParams(n_r1=2, n_r2=4, m=2, delta_r1=1.0, bias=0)
        value = params.r2_max + 100.0
        quantized, _ = TwinRangeAdc(params).convert(np.array([value]))
        trace = TwinRangeSarAdc(params).convert(value)
        assert quantized[0] == trace.output_value == params.r2_max

    @given(
        n_r1=st.integers(min_value=1, max_value=5),
        n_r2=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=0, max_value=4),
        bias=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_lut_convert_codes_matches_cycle_accurate(self, n_r1, n_r2, m, bias, seed):
        """Integer-domain LUT conversion == per-element twin-range search."""
        params = TRQParams(n_r1=n_r1, n_r2=n_r2, m=m, delta_r1=1.0, bias=bias)
        rng = np.random.default_rng(seed)
        max_value = int(max(params.r2_max, params.r1_high)) + 4
        codes = rng.integers(0, max_value + 1, size=50)
        adc = TwinRangeAdc(params)
        quantized, total_ops = adc.convert_codes(codes, max_value)
        traces = [TwinRangeSarAdc(params).convert(float(v)) for v in codes]
        np.testing.assert_array_equal(quantized, [t.output_value for t in traces])
        assert total_ops == sum(t.operations for t in traces)
        assert adc.stats.in_r1 == sum(t.in_r1 for t in traces)
