"""Fault-injection tests of the concurrent :class:`ResultStore`.

Driven by the reusable harness in ``tests/harness/chaos.py``.  The
contracts pinned here:

* **Write storms** — eight uncoordinated writer processes (five clean,
  three SIGKILLed at distinct points inside the commit protocol) leave a
  store whose ``*.json`` artifacts are byte-identical to a single serial
  writer's, with every NPZ sibling loadable; the only debris is staged
  ``.*.tmp-<pid>-*`` files, which :meth:`ResultStore.sweep_stale_tmps`
  removes exactly when the owning pid is dead.
* **Locking** — ``save`` and ``delete`` really serialise on the store's
  ``fcntl`` lock (a thread blocks while another holder is inside
  ``lock.held()``), and a key that is already committed is never
  re-committed (first-writer-wins, observable via the inode).
* **Crash-resume** — a real sweep SIGKILLed at the worst instant (NPZ
  published, JSON completion marker not, lock held) leaves every JSON
  document parseable, and a resumed run produces an aggregate record and
  store listing byte-identical to an undisturbed serial run.
* **Key stability** — ``job_key`` is invariant across processes and
  across arbitrary re-orderings of the spec's dict representation, the
  property the whole multi-writer story rests on.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from harness.chaos import (
    storm_arrays,
    storm_key,
    storm_payload,
    tiny_flat_sweep,
    tiny_mc_sweep,
    write_storm,
)
from repro.experiments import JobSpec, ResultStore, job_key, run_sweep
from repro.experiments import runner as runner_module

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

HARNESS = Path(__file__).parent / "harness" / "chaos.py"
SIGKILLED = -9


def _lock_required(store: ResultStore) -> None:
    if not store.lock.available:  # pragma: no cover - non-POSIX platforms
        pytest.skip("store locking unavailable on this platform")


def harness_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not extra else os.pathsep.join([src, extra])
    return env


def spawn_harness(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, str(HARNESS), *argv],
        env=harness_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def store_listing(store: ResultStore):
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.glob("*.json"))
    }


@pytest.fixture(scope="module")
def weights_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("weights"))


@pytest.fixture(autouse=True)
def _cold_runner():
    runner_module.clear_runner_memos()
    yield


# --------------------------------------------------------------------- #
# The 8-process write storm (with three SIGKILLed writers)
# --------------------------------------------------------------------- #
class TestWriteStorm:
    ITEMS = 12

    def test_storm_with_sigkills_leaves_a_serial_identical_store(self, tmp_path):
        store = ResultStore(tmp_path / "storm")
        _lock_required(store)
        items = str(self.ITEMS)

        # First, one writer dies at the worst instant: item 6's NPZ
        # published, its JSON completion marker not, the fcntl lock held
        # by the dying pid.  (It runs alone so the kill — which only
        # fires when this process wins the commit — is deterministic.)
        torn = spawn_harness(
            "storm", str(store.root), "--items", items,
            "--seed", "7", "--kill", "torn_pair", "--kill-item", "6",
        )
        assert torn.wait(timeout=120) == SIGKILLED
        assert store.npz_path(storm_key(6)).exists()
        assert not store.has(storm_key(6))

        # Then storm the wounded store: five clean writers plus two more
        # that SIGKILL themselves mid-stage.  They must acquire the dead
        # writer's lock (the kernel released it) and finish the job.
        workers = [
            spawn_harness("storm", str(store.root), "--items", items,
                          "--seed", str(seed))
            for seed in range(5)
        ] + [
            spawn_harness("storm", str(store.root), "--items", items,
                          "--seed", "5", "--kill", "mid_tmp", "--kill-item", "3"),
            spawn_harness("storm", str(store.root), "--items", items,
                          "--seed", "6", "--kill", "pre_commit", "--kill-item", "5"),
        ]
        codes = [proc.wait(timeout=120) for proc in workers]
        assert codes[:5] == [0] * 5, [p.communicate() for p in workers[:5]]
        assert codes[5:] == [SIGKILLED] * 2

        # Byte-identical to one undisturbed serial writer.
        reference = ResultStore(tmp_path / "reference")
        write_storm(reference, self.ITEMS, seed=99)
        assert store_listing(store) == store_listing(reference)

        # Every NPZ sibling is complete and loadable — no torn pair.
        for item in range(self.ITEMS):
            arrays = store.load_arrays(storm_key(item))
            expected = storm_arrays(item)
            if expected is None:
                assert arrays == {}
            else:
                np.testing.assert_array_equal(arrays["data"], expected["data"])

        # The dead writers' staging files are the only debris, and the
        # sweep removes all of them (their pids are gone).
        debris = list(store.root.glob(".*.tmp-*"))
        assert debris
        removed = store.sweep_stale_tmps()
        assert sorted(removed) == sorted(debris)
        assert list(store.root.glob(".*.tmp-*")) == []

    def test_store_stays_readable_while_a_storm_runs(self, tmp_path):
        """Readers take no lock: every observed artifact parses mid-storm."""
        store = ResultStore(tmp_path / "storm")
        _lock_required(store)
        workers = [
            spawn_harness("storm", str(store.root), "--items", "12",
                          "--seed", str(seed))
            for seed in range(3)
        ]
        observed = 0
        while any(proc.poll() is None for proc in workers):
            for path in list(store.root.glob("*.json")):
                payload = json.loads(path.read_text())
                assert payload["key"] == path.stem
                observed += 1
        assert all(proc.wait(timeout=60) == 0 for proc in workers)
        assert len(store) == 12


# --------------------------------------------------------------------- #
# The lock really serialises save/delete
# --------------------------------------------------------------------- #
class TestStoreLock:
    def test_save_blocks_until_the_lock_is_released(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        _lock_required(store)
        key = storm_key(0)
        committed = threading.Event()
        writer = threading.Thread(
            target=lambda: (store.save(key, storm_payload(0)), committed.set()),
        )
        with store.lock.held():
            writer.start()
            assert not committed.wait(0.3)
            assert not store.has(key)
        writer.join(timeout=30)
        assert committed.is_set()
        assert store.load(key) == storm_payload(0)

    def test_delete_blocks_until_the_lock_is_released(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        _lock_required(store)
        key = storm_key(2)
        store.save(key, storm_payload(2), storm_arrays(2))
        deleted = threading.Event()
        deleter = threading.Thread(
            target=lambda: (store.delete(key), deleted.set()),
        )
        with store.lock.held():
            deleter.start()
            assert not deleted.wait(0.3)
            assert store.has(key)  # delete is waiting, pair still whole
            assert store.npz_path(key).exists()
        deleter.join(timeout=30)
        assert deleted.is_set()
        assert not store.has(key)
        assert not store.npz_path(key).exists()

    def test_committed_keys_are_never_recommitted(self, tmp_path):
        """First-writer-wins: a racing save discards its staging."""
        store = ResultStore(tmp_path / "s")
        key = storm_key(4)
        store.save(key, storm_payload(4), storm_arrays(4))
        inode = os.stat(store.json_path(key)).st_ino
        store.save(key, storm_payload(4), storm_arrays(4))
        assert os.stat(store.json_path(key)).st_ino == inode
        assert list(store.root.glob(".*.tmp-*")) == []


# --------------------------------------------------------------------- #
# Stale-staging sweep
# --------------------------------------------------------------------- #
class TestSweepStaleTmps:
    def test_only_dead_writers_staging_is_removed(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(dead.stdout)
        stale = store.root / f".{storm_key(0)}.json.tmp-{dead_pid}-0"
        live = store.root / f".{storm_key(1)}.json.tmp-{os.getpid()}-0"
        foreign = store.root / ".not-a-staging-file"
        for path in (stale, live, foreign):
            path.write_bytes(b"{}")
        removed = store.sweep_stale_tmps()
        assert removed == [stale]
        assert not stale.exists()
        assert live.exists() and foreign.exists()

    def test_sweeps_meta_and_failures_directories_too(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(dead.stdout)
        (store.root / "meta").mkdir()
        (store.root / "failures").mkdir()
        tmps = [
            store.root / "meta" / f".{storm_key(0)}.json.tmp-{dead_pid}-1",
            store.root / "failures" / f".{storm_key(0)}.json.tmp-{dead_pid}-2",
        ]
        for path in tmps:
            path.write_bytes(b"{}")
        assert sorted(store.sweep_stale_tmps()) == sorted(tmps)


# --------------------------------------------------------------------- #
# merge_from: the remote-execution return path
# --------------------------------------------------------------------- #
class TestMergeFrom:
    def test_copies_pairs_and_meta_and_skips_present_keys(self, tmp_path):
        source = ResultStore(tmp_path / "worker")
        write_storm(source, 4, seed=0)
        source.save_meta(storm_key(0), {"worker": "shard0", "duration_s": 1.5})

        target = ResultStore(tmp_path / "main")
        target.save(storm_key(1), storm_payload(1), storm_arrays(1))

        merged = target.merge_from(source)
        assert sorted(merged) == sorted(storm_key(i) for i in (0, 2, 3))
        assert store_listing(target) == store_listing(source)
        np.testing.assert_array_equal(
            target.load_arrays(storm_key(2))["data"], storm_arrays(2)["data"],
        )
        assert target.load_meta(storm_key(0)) == {
            "worker": "shard0", "duration_s": 1.5,
        }
        # Idempotent: a second merge (a duplicate shard's return) is a no-op.
        assert target.merge_from(source) == []

    def test_keys_argument_restricts_the_copy(self, tmp_path):
        source = ResultStore(tmp_path / "worker")
        write_storm(source, 4, seed=0)
        target = ResultStore(tmp_path / "main")
        merged = target.merge_from(source, keys=[storm_key(1), "absent"])
        assert merged == [storm_key(1)]
        assert list(target.keys()) == [storm_key(1)]


# --------------------------------------------------------------------- #
# Crash-resume of a real sweep (SIGKILL at the worst instant)
# --------------------------------------------------------------------- #
class TestCrashResume:
    def test_torn_pair_kill_then_resume_is_byte_identical(
        self, tmp_path, weights_cache,
    ):
        serial_store = ResultStore(tmp_path / "serial")
        _lock_required(serial_store)
        serial = run_sweep(
            tiny_mc_sweep(), serial_store, weights_cache_dir=weights_cache,
        )

        # The chaos run dies inside the locked commit: NPZ published,
        # JSON completion marker not, fcntl lock held by the dying pid.
        crashed_root = tmp_path / "crashed"
        proc = spawn_harness(
            "sweep", str(crashed_root), "--cache", weights_cache,
            "--kill", "torn_pair",
        )
        assert proc.wait(timeout=300) == SIGKILLED, proc.communicate()

        crashed = ResultStore(crashed_root)
        # No torn JSON: every committed document parses.
        for key in crashed.keys():
            assert crashed.load(key)["key"] == key
        # The kill tore a pair: some NPZ exists without its JSON marker.
        orphans = [
            path for path in crashed.root.glob("*.npz")
            if not crashed.has(path.stem)
        ]
        assert orphans

        runner_module.clear_runner_memos()
        resumed = run_sweep(
            tiny_mc_sweep(), crashed, weights_cache_dir=weights_cache,
        )
        serial_record = json.dumps(serial.record.to_dict(), sort_keys=True)
        resumed_record = json.dumps(resumed.record.to_dict(), sort_keys=True)
        assert resumed_record == serial_record
        assert store_listing(crashed) == store_listing(serial_store)
        assert list(crashed.root.glob(".*.tmp-*")) == []


# --------------------------------------------------------------------- #
# job_key stability across processes and dict orderings
# --------------------------------------------------------------------- #
def _shuffled(obj, rng: random.Random):
    if isinstance(obj, dict):
        items = [(key, _shuffled(value, rng)) for key, value in obj.items()]
        rng.shuffle(items)
        return dict(items)
    if isinstance(obj, list):
        return [_shuffled(value, rng) for value in obj]
    return obj


class TestJobKeyStability:
    def test_keys_survive_subprocess_roundtrip_and_dict_shuffles(self):
        jobs = tiny_mc_sweep().expand() + tiny_flat_sweep().expand()
        assert len(jobs) >= 6
        expected, shuffled_dicts = [], []
        for seed in range(12):
            rng = random.Random(seed)
            for job in jobs:
                expected.append(job_key(job))
                shuffled_dicts.append(_shuffled(job.to_dict(), rng))

        # The shuffle must not round-trip to a different spec in-process...
        for spec_dict, key in zip(shuffled_dicts, expected):
            assert job_key(JobSpec.from_dict(spec_dict)) == key

        # ...nor hash differently in a fresh interpreter.
        proc = subprocess.run(
            [sys.executable, str(HARNESS), "hash"],
            input=json.dumps(shuffled_dicts),
            env=harness_env(),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == expected
