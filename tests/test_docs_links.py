"""Docs link check: every relative link in README.md and docs/ resolves.

Scans markdown links ``[text](target)`` (skipping http/https/mailto and
pure in-page anchors) and asserts the target file or directory exists
relative to the linking document.  Keeps the docs suite from silently
rotting as files move.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def markdown_documents():
    docs = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        docs += sorted(docs_dir.glob("*.md"))
    return docs


def relative_links(path: Path):
    text = CODE_FENCE.sub("", path.read_text())
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        yield target


@pytest.mark.parametrize(
    "document", markdown_documents(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(document):
    missing = [
        target for target in relative_links(document)
        if not (document.parent / target).exists()
    ]
    assert not missing, (
        f"{document.relative_to(REPO_ROOT)} links to missing paths: {missing}"
    )


def test_docs_suite_exists():
    """The documentation suite this PR introduced stays present."""
    for name in (
        "architecture.md",
        "experiments.md",
        "reproducing-figures.md",
        "observability.md",
    ):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"
