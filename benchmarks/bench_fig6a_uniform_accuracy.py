"""Experiment ``fig6a``: accuracy vs ADC resolution with a uniform ADC (no TRQ).

Paper reference (Fig. 6a): with conventional uniform conversion, prediction
accuracy degrades as the ADC sensing precision drops below ~7 bits; at 4 bits
the drop is severe on most workloads.

The sweep runs on the experiment runner: the f/f (float) and 8/f
(fake-quantized) references are ``datapath`` evaluate jobs, and each sensing
precision is a ``uniform_calibrated`` evaluate job — all precisions share
one stored bit-line distribution capture per workload.

Run::

    python benchmarks/bench_fig6a_uniform_accuracy.py [--smoke] [--jobs N]
"""

from __future__ import annotations

from figure_shim import (
    build_arg_parser,
    env_eval_images,
    env_preset,
    env_workload_names,
    run_figure,
)

from repro.experiments import ResultStore  # noqa: E402
from repro.experiments.presets import fig6a  # noqa: E402
from repro.report.figures import fig6a_record_from_run  # noqa: E402


def main(argv=None) -> int:
    args = build_arg_parser(__doc__).parse_args(argv)
    experiment = fig6a(
        smoke=args.smoke,
        workload_names=env_workload_names() if not args.smoke else None,
        preset=env_preset(),
        images=env_eval_images(),
    )
    run = run_figure(experiment, args)

    record = fig6a_record_from_run(run, ResultStore(args.store))
    series_by_workload = {}
    for row in record.rows:
        series_by_workload.setdefault(row["workload"], {})[row["config"]] = row["accuracy"]
    for name, series in series_by_workload.items():
        # Monotone-ish degradation: the lowest precision is never better than
        # the full-resolution uniform configuration by a meaningful margin.
        if "4" in series and "8" in series:
            assert series["4"] <= series["8"] + 0.05, (name, series)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
