"""Experiment ``fig6a``: accuracy vs ADC resolution with a uniform ADC (no TRQ).

Paper reference (Fig. 6a): with conventional uniform conversion, prediction
accuracy degrades as the ADC sensing precision drops below ~7 bits; at 4 bits
the drop is severe on most workloads.
"""

from __future__ import annotations

from conftest import FIG6_BITS, eval_image_count

from repro.core import uniform_adc_configs
from repro.quantization import FakeQuantBackend, attach_backend, detach_backend
from repro.nn import top1_accuracy
from repro.report import fig6_accuracy_record, format_table


def _reference_accuracies(workload, images, labels):
    """The 'f/f' (float) and '8/f' (8-bit weights/activations) references."""
    model = workload.model
    model.eval()
    float_acc = top1_accuracy(model(images), labels)
    backend = FakeQuantBackend(workload.quantized)
    attach_backend(model, backend)
    try:
        quant_acc = top1_accuracy(model(images), labels)
    finally:
        detach_backend(model)
    return float_acc, quant_acc


def test_fig6a_uniform_adc_accuracy(benchmark, workloads, results_dir):
    num_eval = eval_image_count()

    def run():
        accuracy_by_config = {}
        for name, workload in workloads.items():
            split = workload.eval_split(num_eval)
            images, labels = split.images, split.labels
            float_acc, quant_acc = _reference_accuracies(workload, images, labels)
            series = {"f/f": float_acc, "8/f": quant_acc}
            samples = workload.simulator.collect_bitline_distributions(
                workload.calibration.images[:16], batch_size=8, seed=0
            )
            for bits in FIG6_BITS:
                result = workload.simulator.evaluate(
                    images, labels, uniform_adc_configs(samples, bits=bits), batch_size=16
                )
                series[str(bits)] = result.accuracy
            accuracy_by_config[name] = series
        return accuracy_by_config

    accuracy_by_config = benchmark.pedantic(run, rounds=1, iterations=1)

    record = fig6_accuracy_record(
        "fig6a",
        "Accuracy vs ADC resolution, uniform ADC (no TRQ)",
        "Uniform quantization needs >= 7 bits to preserve accuracy (Fig. 6a)",
        accuracy_by_config,
    )
    record.metadata["eval_images"] = num_eval
    record.save(results_dir / "fig6a.json")
    print()
    print(format_table(record.rows))

    for name, series in accuracy_by_config.items():
        # Monotone-ish degradation: the lowest precision is never better than
        # the full-resolution uniform configuration by a meaningful margin.
        assert series["4"] <= series["8"] + 0.05
