"""Multi-workload Monte Carlo robustness sweep on the experiment orchestrator.

The ROADMAP follow-up from the non-ideality PR: Monte Carlo robustness over
the multi-workload sweep (LeNet-5 + ResNet-20 + SqueezeNet) with result
caching.  Beyond producing the accuracy-under-noise table, this benchmark
*asserts* the orchestrator's contracts end to end:

1. **Resume bit-identity** — a sweep interrupted after half its jobs and
   then resumed skips the completed jobs via the content-addressed store
   and produces a byte-identical aggregate record to an uninterrupted
   single-process run (checked every invocation, including ``--smoke``).
2. **Cache hits** — rerunning the finished sweep computes nothing.
3. **Parallel speedup** (``--timing``) — ``--jobs N`` executes the smoke
   sweep ≥2x faster than ``--jobs 1`` on a machine with enough cores (the
   assertion needs ≥4 physical cores to be meaningful and is skipped, with
   a notice, below that).

Run::

    python benchmarks/bench_multi_workload_robustness.py            # full
    python benchmarks/bench_multi_workload_robustness.py --smoke    # CI
    python benchmarks/bench_multi_workload_robustness.py --smoke --timing
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.experiments import (  # noqa: E402
    ResultStore,
    clear_runner_memos,
    execute_job,
    prewarm_workloads,
    run_sweep,
)
from repro.experiments.presets import multi_workload_robustness  # noqa: E402

MIN_PARALLEL_SPEEDUP = 2.0
MIN_CORES_FOR_TIMING = 4


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budgets for CI (a few tens of seconds)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the main sweep")
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--images", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timing", action="store_true",
                        help="measure and assert the >=2x parallel speedup "
                             "on the smoke sweep (needs >=4 cores)")
    parser.add_argument("--store", type=Path,
                        default=BENCH_DIR / "results" / "store")
    parser.add_argument("--out", type=Path,
                        default=BENCH_DIR / "results" / "multi_workload_robustness.json")
    return parser.parse_args(argv)


def record_bytes(run) -> bytes:
    """The serialized aggregate the bit-identity assertions compare."""
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


def check_resume_bit_identity(experiment, cache_dir: str) -> None:
    """Crash-resume equivalence on throwaway stores (smoke-scale budgets)."""
    sweep = experiment.sweep
    scratch = Path(tempfile.mkdtemp(prefix="mwr-resume-"))
    try:
        # Uninterrupted single-process reference run.
        clear_runner_memos()
        reference = run_sweep(
            sweep, scratch / "reference", weights_cache_dir=cache_dir,
            experiment=experiment,
        )
        # Simulated crash: execute only the first half of the jobs, then
        # abandon the run...
        interrupted_store = ResultStore(scratch / "interrupted")
        jobs = sweep.expand()
        for job in jobs[: len(jobs) // 2]:
            execute_job(job, interrupted_store, cache_dir)
        # ... and resume: the completed half must be served from the store.
        clear_runner_memos()
        resumed = run_sweep(
            sweep, interrupted_store, weights_cache_dir=cache_dir,
            experiment=experiment,
        )
        assert resumed.stats.cached == len(jobs) // 2, (
            f"resume recomputed cached jobs: {resumed.stats}"
        )
        assert resumed.stats.computed == len(jobs) - len(jobs) // 2
        assert record_bytes(resumed) == record_bytes(reference), (
            "resumed sweep's aggregate record differs from the uninterrupted run"
        )
        print(f"  resume check: {resumed.stats.cached} jobs skipped via cache, "
              f"aggregate bit-identical to the uninterrupted run "
              f"({len(record_bytes(reference))} bytes)")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def check_parallel_speedup(experiment, cache_dir: str, jobs: int) -> None:
    """Fresh-store serial vs parallel wall time on the smoke sweep."""
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_TIMING:
        print(f"  timing check SKIPPED: {cores} cores < {MIN_CORES_FOR_TIMING} "
              f"(the >={MIN_PARALLEL_SPEEDUP}x assertion needs real parallelism)")
        return
    jobs = max(jobs, MIN_CORES_FOR_TIMING)
    sweep = experiment.sweep
    # Train once up front so both timed runs only load cached weights.
    prewarm_workloads(sweep, cache_dir)
    scratch = Path(tempfile.mkdtemp(prefix="mwr-timing-"))
    try:
        clear_runner_memos()
        start = time.perf_counter()
        serial = run_sweep(sweep, scratch / "serial", jobs=1,
                           weights_cache_dir=cache_dir, prewarm=False)
        serial_s = time.perf_counter() - start

        clear_runner_memos()
        start = time.perf_counter()
        parallel = run_sweep(sweep, scratch / "parallel", jobs=jobs,
                             weights_cache_dir=cache_dir, prewarm=False)
        parallel_s = time.perf_counter() - start

        assert record_bytes(serial) == record_bytes(parallel), \
            "parallel aggregate differs from serial"
        speedup = serial_s / parallel_s
        print(f"  timing: serial {serial_s:.1f}s, --jobs {jobs} {parallel_s:.1f}s "
              f"-> {speedup:.2f}x")
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"--jobs {jobs} sped the smoke sweep up only {speedup:.2f}x over "
            f"serial (required {MIN_PARALLEL_SPEEDUP}x on {cores} cores)"
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv=None) -> int:
    args = parse_args(argv)
    cache_dir = str(BENCH_DIR / ".cache")
    experiment = multi_workload_robustness(
        smoke=args.smoke, trials=args.trials, images=args.images, seed=args.seed,
    )

    # Main sweep against the persistent store (resumes across invocations).
    run = run_sweep(
        experiment.sweep, ResultStore(args.store), jobs=args.jobs,
        weights_cache_dir=cache_dir, experiment=experiment, progress=print,
    )
    for row in run.rows:
        prefix = (f"  {row['workload']:14s} sigma={row['sigma']:4.2f} "
                  f"faults={row['fault_rate']:7.4f}")
        if "mean_accuracy" in row:
            seed = row.get("mc_seed", args.seed)
            print(f"{prefix} seed={seed}  acc {row['mean_accuracy']:.3f} "
                  f"± {row['std_accuracy']:.3f}  flip {row['mean_flip_rate']:.3f}  "
                  f"clean {row['clean_accuracy']:.3f}")
        else:
            print(f"{prefix}  clean accuracy {row['accuracy']:.3f}")
    run.record.save(args.out)

    # Contract 2: a finished sweep is served entirely from the store.
    rerun = run_sweep(
        experiment.sweep, ResultStore(args.store),
        weights_cache_dir=cache_dir, experiment=experiment,
    )
    assert rerun.stats.computed == 0 and rerun.stats.cached == rerun.stats.total, \
        f"finished sweep recomputed jobs: {rerun.stats}"
    assert record_bytes(rerun) == record_bytes(run)
    print(f"  cache check: rerun served all {rerun.stats.total} jobs from the store")

    # Contract 1: crash + resume == uninterrupted run, bit for bit.  Always
    # checked on smoke-scale budgets so the full sweep stays affordable.
    resume_experiment = experiment if args.smoke else multi_workload_robustness(
        smoke=True, seed=args.seed
    )
    check_resume_bit_identity(resume_experiment, cache_dir)

    # Contract 3 (optional): parallel execution beats serial >=2x.
    if args.timing:
        timing_experiment = experiment if args.smoke else multi_workload_robustness(
            smoke=True, seed=args.seed
        )
        check_parallel_speedup(timing_experiment, cache_dir, args.jobs)

    print(f"multi-workload robustness: {run.stats.total} jobs "
          f"({run.stats.cached} cached, {run.stats.computed} computed), "
          f"{run.stats.elapsed_s:.1f}s -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
