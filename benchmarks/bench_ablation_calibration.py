"""Ablation ``abl-calib``: sensitivity to the calibration-set size.

The paper calibrates on 32 randomly selected training images (Section V-A).
This ablation varies the calibration-set size and records how the resulting
ADC configuration's accuracy and operation count change.
"""

from __future__ import annotations

from conftest import eval_image_count

from repro.core import CoDesignOptimizer, SearchSpaceConfig
from repro.datasets import sample_calibration_set
from repro.report import ExperimentRecord, format_table


def test_ablation_calibration_set_size(benchmark, workloads, results_dir):
    name, workload = next(iter(workloads.items()))
    split = workload.eval_split(eval_image_count())

    def run():
        rows = []
        for calib_size in (4, 8, 16, 32):
            calibration = sample_calibration_set(
                workload.dataset.train, num_images=calib_size, seed=calib_size
            )
            optimizer = CoDesignOptimizer(
                workload.model, calibration.images, calibration.labels,
                search_space=SearchSpaceConfig(num_v_grid_candidates=12),
                max_samples_per_layer=8192,
            )
            result = optimizer.run(split.images, split.labels, batch_size=16,
                                   use_accuracy_loop=False, initial_n_max=4)
            rows.append({
                "calibration_images": calib_size,
                "accuracy": result.final_accuracy,
                "accuracy_drop": result.accuracy_drop,
                "remaining_ops_fraction": result.remaining_ops_fraction,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        experiment_id="abl-calib",
        description="TRQ calibration quality vs calibration-set size",
        paper_reference="Section V-A: 32 calibration images suffice (no retraining)",
        rows=rows,
        metadata={"workload": name},
    )
    record.save(results_dir / "ablation_calibration.json")
    print()
    print(format_table(rows))

    # Even the 32-image configuration (the paper's choice) keeps the accuracy
    # drop bounded and the operation count clearly reduced.  The bound is loose
    # because the evaluation subset is small (a handful of images of margin).
    final = rows[-1]
    assert final["accuracy_drop"] <= 0.25
    assert final["remaining_ops_fraction"] < 0.85
