"""Ablation ``abl-calib``: sensitivity to the calibration-set size, plus the
wall-time effect of the fast engine's throughput chunking on the search.

The paper calibrates on 32 randomly selected training images (Section V-A).
The first benchmark varies the calibration-set size and records how the
resulting ADC configuration's accuracy and operation count change; the
second pins the PR follow-up that threaded the fast engine's throughput
chunking defaults into the calibration search — the accuracy oracle that
dominates Algorithm 1's outer loop must get measurably faster at the
throughput chunk size than at a small legacy chunk.
"""

from __future__ import annotations

import json
import time

from conftest import eval_image_count

from repro.adc import twin_range_config
from repro.core import CoDesignOptimizer, SearchSpaceConfig, TRQParams
from repro.datasets import sample_calibration_set
from repro.report import ExperimentRecord, format_table
from repro.sim import PimSimulator


def test_ablation_calibration_set_size(benchmark, workloads, results_dir):
    name, workload = next(iter(workloads.items()))
    split = workload.eval_split(eval_image_count())

    def run():
        rows = []
        for calib_size in (4, 8, 16, 32):
            calibration = sample_calibration_set(
                workload.dataset.train, num_images=calib_size, seed=calib_size
            )
            optimizer = CoDesignOptimizer(
                workload.model, calibration.images, calibration.labels,
                search_space=SearchSpaceConfig(num_v_grid_candidates=12),
                max_samples_per_layer=8192,
            )
            result = optimizer.run(split.images, split.labels, batch_size=16,
                                   use_accuracy_loop=False, initial_n_max=4)
            rows.append({
                "calibration_images": calib_size,
                "accuracy": result.final_accuracy,
                "accuracy_drop": result.accuracy_drop,
                "remaining_ops_fraction": result.remaining_ops_fraction,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        experiment_id="abl-calib",
        description="TRQ calibration quality vs calibration-set size",
        paper_reference="Section V-A: 32 calibration images suffice (no retraining)",
        rows=rows,
        metadata={"workload": name},
    )
    record.save(results_dir / "ablation_calibration.json")
    print()
    print(format_table(rows))

    # Even the 32-image configuration (the paper's choice) keeps the accuracy
    # drop bounded and the operation count clearly reduced.  The bound is loose
    # because the evaluation subset is small (a handful of images of margin).
    final = rows[-1]
    assert final["accuracy_drop"] <= 0.25
    assert final["remaining_ops_fraction"] < 0.85


#: The oracle wall-time benchmark compares a small per-chunk configuration
#: against the adaptive throughput chunking (``chunk_size=None``) that the
#: calibration search now inherits.  Interleaved min-of-N timing keeps the
#: comparison robust on shared runners, and the reference chunk is small
#: enough (per-chunk Python/LUT overhead dominated) that the measured
#: advantage (~1.8x on a laptop-class CPU) clears the floor with margin.
SMALL_CHUNK = 32
MIN_ORACLE_SPEEDUP = 1.15


def test_calibration_oracle_throughput_chunking(benchmark, workloads, results_dir):
    """The calibration search's accuracy oracle must be faster under the
    threaded adaptive throughput chunking than at a small per-chunk
    configuration (ROADMAP follow-up from the fast-engine PR)."""
    name, workload = next(iter(workloads.items()))
    split = workload.eval_split(eval_image_count())
    params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)

    def make_oracle(chunk_size):
        simulator = PimSimulator(workload.quantized, chunk_size=chunk_size)
        configs = {n: twin_range_config(params) for n in simulator.layer_names()}
        oracle = simulator.accuracy_evaluator(split.images, split.labels, batch_size=16)
        return lambda: oracle(configs)

    runs = {"small": make_oracle(SMALL_CHUNK), "throughput": make_oracle(None)}
    for run in runs.values():  # warm-up: mapping, LUTs, BLAS paths
        run()
    best = {key: float("inf") for key in runs}
    for _ in range(5):  # interleaved so machine drift hits both equally
        for key, run in runs.items():
            start = time.perf_counter()
            run()
            best[key] = min(best[key], time.perf_counter() - start)
    speedup = best["small"] / best["throughput"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["oracle_chunking_speedup"] = speedup

    record = {
        "experiment": "abl-calib-chunking",
        "workload": name,
        "small_chunk": SMALL_CHUNK,
        "throughput_chunk": "adaptive",
        "small_chunk_s": best["small"],
        "throughput_chunk_s": best["throughput"],
        "speedup": speedup,
    }
    with open(results_dir / "ablation_calibration_chunking.json", "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"\n  oracle wall-time: chunk {SMALL_CHUNK}: {best['small']*1e3:.1f} ms   "
          f"adaptive chunking: {best['throughput']*1e3:.1f} ms   {speedup:.2f}x")

    assert speedup >= MIN_ORACLE_SPEEDUP, (
        f"adaptive throughput chunking speeds the calibration oracle only "
        f"{speedup:.2f}x over chunk={SMALL_CHUNK} (required {MIN_ORACLE_SPEEDUP}x)"
    )
