"""Ablation ``abl-calib``: sensitivity to the calibration-set size, plus the
wall-time effect of the fast engine's throughput chunking on the search.

The paper calibrates on 32 randomly selected training images (Section V-A).
The first benchmark varies the calibration-set size and records how the
resulting ADC configuration's accuracy and operation count change; since
PR 3 it is a declarative ``kind="calibration"`` sweep executed through the
:mod:`repro.experiments` runner, so repeated benchmark runs serve the grid
from the content-addressed result store.  The second benchmark pins the PR
follow-up that threaded the fast engine's throughput chunking defaults into
the calibration search — the accuracy oracle that dominates Algorithm 1's
outer loop must get measurably faster at the throughput chunk size than at
a small legacy chunk.
"""

from __future__ import annotations

import json
import time

from conftest import (
    CACHE_DIR,
    WORKLOAD_CALIBRATION_IMAGES,
    WORKLOAD_SEED,
    WORKLOAD_TEST_SIZE,
    WORKLOAD_TRAIN_SIZE,
    _preset,
    eval_image_count,
    workload_epochs,
)

from repro.adc import twin_range_config
from repro.core import TRQParams
from repro.experiments import ResultStore, WorkloadSpec, run_sweep
from repro.experiments.presets import ablation_calibration
from repro.report import format_table
from repro.sim import PimSimulator


def test_ablation_calibration_set_size(benchmark, workloads, results_dir):
    name = next(iter(workloads))
    # The grid and experiment identity come from the preset factory; the
    # workload preparation is built from the conftest budget constants, so
    # the runner's jobs share the trained-weight cache with the figure
    # benchmarks by construction.
    experiment = ablation_calibration(
        images=eval_image_count(),
        workload=WorkloadSpec(
            name, preset=_preset(),
            train_size=WORKLOAD_TRAIN_SIZE, test_size=WORKLOAD_TEST_SIZE,
            calibration_images=WORKLOAD_CALIBRATION_IMAGES,
            epochs=workload_epochs(name), seed=WORKLOAD_SEED,
        ),
    )
    store = ResultStore(results_dir / "store")

    run = benchmark.pedantic(
        lambda: run_sweep(
            experiment.sweep, store, weights_cache_dir=str(CACHE_DIR),
            experiment=experiment,
        ),
        rounds=1, iterations=1,
    )
    rows = run.rows
    run.record.save(results_dir / "ablation_calibration.json")
    print()
    print(format_table(rows))

    # Even the 32-image configuration (the paper's choice) keeps the accuracy
    # drop bounded and the operation count clearly reduced.  The bound is loose
    # because the evaluation subset is small (a handful of images of margin).
    final = rows[-1]
    assert final["accuracy_drop"] <= 0.25
    assert final["remaining_ops_fraction"] < 0.85


#: The oracle wall-time benchmark compares a small per-chunk configuration
#: against the adaptive throughput chunking (``chunk_size=None``) that the
#: calibration search now inherits.  Interleaved min-of-N timing keeps the
#: comparison robust on shared runners, and the reference chunk is small
#: enough (per-chunk Python/LUT overhead dominated) that the measured
#: advantage (~1.8x on a laptop-class CPU) clears the floor with margin.
SMALL_CHUNK = 32
MIN_ORACLE_SPEEDUP = 1.15


def test_calibration_oracle_throughput_chunking(benchmark, workloads, results_dir):
    """The calibration search's accuracy oracle must be faster under the
    threaded adaptive throughput chunking than at a small per-chunk
    configuration (ROADMAP follow-up from the fast-engine PR)."""
    name, workload = next(iter(workloads.items()))
    split = workload.eval_split(eval_image_count())
    params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)

    def make_oracle(chunk_size):
        simulator = PimSimulator(workload.quantized, chunk_size=chunk_size)
        configs = {n: twin_range_config(params) for n in simulator.layer_names()}
        oracle = simulator.accuracy_evaluator(split.images, split.labels, batch_size=16)
        return lambda: oracle(configs)

    runs = {"small": make_oracle(SMALL_CHUNK), "throughput": make_oracle(None)}
    for run in runs.values():  # warm-up: mapping, LUTs, BLAS paths
        run()
    best = {key: float("inf") for key in runs}
    for _ in range(5):  # interleaved so machine drift hits both equally
        for key, run in runs.items():
            start = time.perf_counter()
            run()
            best[key] = min(best[key], time.perf_counter() - start)
    speedup = best["small"] / best["throughput"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["oracle_chunking_speedup"] = speedup

    record = {
        "experiment": "abl-calib-chunking",
        "workload": name,
        "small_chunk": SMALL_CHUNK,
        "throughput_chunk": "adaptive",
        "small_chunk_s": best["small"],
        "throughput_chunk_s": best["throughput"],
        "speedup": speedup,
    }
    with open(results_dir / "ablation_calibration_chunking.json", "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"\n  oracle wall-time: chunk {SMALL_CHUNK}: {best['small']*1e3:.1f} ms   "
          f"adaptive chunking: {best['throughput']*1e3:.1f} ms   {speedup:.2f}x")

    assert speedup >= MIN_ORACLE_SPEEDUP, (
        f"adaptive throughput chunking speeds the calibration oracle only "
        f"{speedup:.2f}x over chunk={SMALL_CHUNK} (required {MIN_ORACLE_SPEEDUP}x)"
    )
