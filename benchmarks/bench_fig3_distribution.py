"""Experiment ``fig3a``: distribution of crossbar bit-line outputs.

Paper reference (Fig. 3a): the bit-line value distribution is highly
imbalanced — the majority of samples concentrate in a small interval close
to zero.  This benchmark collects the distributions on the calibration images
of each workload and checks/records that imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.report import fig3a_distribution_record


def test_fig3a_bitline_distribution(benchmark, workloads, results_dir):
    def run():
        per_workload = {}
        for name, workload in workloads.items():
            samples = workload.simulator.collect_bitline_distributions(
                workload.calibration.images[:16],
                batch_size=8,
                capacity_per_layer=50_000,
                seed=0,
            )
            per_workload[name] = samples
        return per_workload

    per_workload = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, samples in per_workload.items():
        record = fig3a_distribution_record(samples, num_bins=16)
        record.metadata.update({"workload": name, "calibration_images": 16})
        record.save(results_dir / f"fig3a_{name}.json")
        print()
        print(record.to_table(
            columns=["layer", "count", "median", "p95", "max", "frac_below_max_over_8"]
        ))

        pooled = np.concatenate(list(samples.values()))
        # The reproduced claim: the pooled distribution is bottom-heavy.
        assert np.median(pooled) <= pooled.max() / 4.0
        low_mass = [
            float(np.mean(v <= v.max() / 4.0)) if v.max() > 0 else 1.0
            for v in samples.values()
        ]
        assert np.mean(np.array(low_mass) > 0.5) >= 0.6
