"""Experiment ``fig3a``: distribution of crossbar bit-line outputs.

Paper reference (Fig. 3a): the bit-line value distribution is highly
imbalanced — the majority of samples concentrate in a small interval close
to zero.  The capture runs as a ``distribution``-kind job per workload on
the experiment runner (store-cached, resumable, ``--jobs N``); the exact
per-layer sample arrays are persisted as NPZ siblings, and the per-layer
table is rebuilt from them by :mod:`repro.report.figures`.

Run::

    python benchmarks/bench_fig3_distribution.py            # full capture
    python benchmarks/bench_fig3_distribution.py --smoke    # CI seconds
"""

from __future__ import annotations

import numpy as np

from figure_shim import build_arg_parser, env_preset, env_workload_names, run_figure

from repro.experiments import ResultStore  # noqa: E402
from repro.experiments.presets import fig3  # noqa: E402


def main(argv=None) -> int:
    args = build_arg_parser(__doc__).parse_args(argv)
    experiment = fig3(
        smoke=args.smoke,
        workload_names=env_workload_names() if not args.smoke else None,
        preset=env_preset(),
    )
    run = run_figure(experiment, args)

    # The reproduced claim: pooled distributions are bottom-heavy.
    store = ResultStore(args.store)
    for job, key in zip(run.sweep.expand(), run.keys):
        if not store.has(key):
            continue
        samples = store.load_arrays(key)
        pooled = np.concatenate(list(samples.values()))
        assert np.median(pooled) <= pooled.max() / 4.0, job.workload.name
        low_mass = [
            float(np.mean(v <= v.max() / 4.0)) if v.max() > 0 else 1.0
            for v in samples.values()
        ]
        assert np.mean(np.array(low_mass) > 0.5) >= 0.6, job.workload.name
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
