"""Robustness benchmark: TRQ accuracy under device noise (sigma × fault rate).

Sweeps Gaussian read-noise sigma against stuck-at fault rate on LeNet-5 with
the paper's twin-range ADC configuration, running Monte Carlo trials per grid
point (``PimSimulator.run_monte_carlo``, batched over the fast engine).  For
every point it reports mean/std accuracy, the normal-approximation confidence
interval and the prediction flip rate versus the clean run, answering the
standard reviewer question — how far can the analog front end degrade before
the TRQ co-design stops holding up?

Runs as a plain script (so the CI smoke job can execute it without the
pytest-benchmark harness)::

    python benchmarks/bench_robustness_noise.py            # full sweep
    python benchmarks/bench_robustness_noise.py --smoke    # seconds-fast CI job

Results are written to ``benchmarks/results/robustness_noise.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

import numpy as np  # noqa: E402

from repro.adc import twin_range_config  # noqa: E402
from repro.core import TRQParams  # noqa: E402
from repro.nonideal import GaussianReadNoise, NonIdealityStack, StuckAtFaults  # noqa: E402
from repro.workloads import prepare_workload  # noqa: E402

TRQ = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep + training budget for CI (a few seconds)")
    parser.add_argument("--trials", type=int, default=None,
                        help="Monte Carlo trials per grid point")
    parser.add_argument("--images", type=int, default=None,
                        help="evaluation images per trial")
    parser.add_argument("--sigmas", type=float, nargs="*", default=None,
                        help="read-noise sigmas (LSBs) to sweep")
    parser.add_argument("--fault-rates", type=float, nargs="*", default=None,
                        help="stuck-at-ON fault rates to sweep")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=BENCH_DIR / "results" / "robustness_noise.json")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.smoke:
        sigmas = args.sigmas if args.sigmas is not None else [0.0, 0.5]
        fault_rates = args.fault_rates if args.fault_rates is not None else [0.0, 1e-3]
        trials = args.trials or 2
        images = args.images or 8
        train_size, epochs = 128, 6
    else:
        sigmas = args.sigmas if args.sigmas is not None else [0.0, 0.25, 0.5, 1.0, 2.0]
        fault_rates = args.fault_rates if args.fault_rates is not None else [0.0, 1e-3, 5e-3, 1e-2]
        trials = args.trials or 8
        images = args.images or 48
        train_size, epochs = 256, 20

    start = time.perf_counter()
    workload = prepare_workload(
        "lenet5", preset="tiny", train_size=train_size, test_size=max(images, 32),
        calibration_images=16, epochs=epochs, seed=args.seed,
        cache_dir=str(BENCH_DIR / ".cache"),
    )
    simulator = workload.simulator
    split = workload.eval_split(images)
    configs = {name: twin_range_config(TRQ) for name in simulator.layer_names()}
    # The clean reference is deterministic and shared by every grid point.
    clean = simulator.evaluate(split.images, split.labels, configs, batch_size=16)

    rows = []
    for sigma in sigmas:
        for rate in fault_rates:
            stack = NonIdealityStack(
                [GaussianReadNoise(sigma=sigma), StuckAtFaults(rate_on=rate)],
                seed=args.seed,
            )
            result = simulator.run_monte_carlo(
                split.images, split.labels, stack,
                adc_configs=configs, trials=trials, batch_size=16, seed=args.seed,
                clean=clean,
            )
            summary = result.summary()
            summary.update({"sigma": sigma, "fault_rate": rate})
            rows.append(summary)
            low, high = result.accuracy_ci
            print(f"  sigma={sigma:5.2f} faults={rate:7.4f}  "
                  f"acc {result.mean_accuracy:.3f} ± {result.std_accuracy:.3f} "
                  f"(CI [{low:.3f}, {high:.3f}])  flip {result.mean_flip_rate:.3f}  "
                  f"clean {result.clean_accuracy:.3f}")

            if sigma == 0.0 and rate == 0.0:
                # Self-check: an all-zero stack is the identity — every trial
                # must reproduce the clean run exactly (keyed noise does not
                # disturb the deterministic datapath).
                assert result.mean_accuracy == result.clean_accuracy, \
                    "zero-noise Monte Carlo trial diverged from the clean run"
                assert result.mean_flip_rate == 0.0

    elapsed = time.perf_counter() - start
    record = {
        "experiment": "robustness_noise",
        "workload": "lenet5",
        "trq_params": {"n_r1": TRQ.n_r1, "n_r2": TRQ.n_r2, "m": TRQ.m, "bias": TRQ.bias},
        "trials": trials,
        "images": images,
        "smoke": bool(args.smoke),
        "elapsed_s": elapsed,
        "rows": rows,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"robustness sweep: {len(rows)} grid points, {trials} trials each, "
          f"{elapsed:.1f}s -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
