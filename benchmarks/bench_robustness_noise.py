"""Robustness benchmark: TRQ accuracy under device noise (sigma × fault rate).

Sweeps Gaussian read-noise sigma against stuck-at fault rate on LeNet-5 with
the paper's twin-range ADC configuration, running Monte Carlo trials per grid
point.  Since PR 3 the sweep is *declarative*: the grid is a
:mod:`repro.experiments` preset executed by the orchestration runner, so
completed grid points are cached in the content-addressed result store
(reruns and interrupted sweeps skip them), the clean reference is computed
once and shared by every grid point, and ``--jobs N`` runs points in
parallel worker processes.

Runs as a plain script (so the CI smoke job can execute it without the
pytest-benchmark harness)::

    python benchmarks/bench_robustness_noise.py              # full sweep
    python benchmarks/bench_robustness_noise.py --smoke      # seconds-fast CI
    python benchmarks/bench_robustness_noise.py --jobs 4     # parallel
    python benchmarks/bench_robustness_noise.py --force      # ignore cache

Results are written to ``benchmarks/results/robustness_noise.json``; the
store lives under ``benchmarks/results/store/``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.experiments import ResultStore, run_sweep  # noqa: E402
from repro.experiments.presets import robustness_noise  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep + training budget for CI (a few seconds)")
    parser.add_argument("--trials", type=int, default=None,
                        help="Monte Carlo trials per grid point")
    parser.add_argument("--images", type=int, default=None,
                        help="evaluation images per trial")
    parser.add_argument("--sigmas", type=float, nargs="*", default=None,
                        help="read-noise sigmas (LSBs) to sweep")
    parser.add_argument("--fault-rates", type=float, nargs="*", default=None,
                        help="stuck-at-ON fault rates to sweep")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default: serial)")
    parser.add_argument("--force", action="store_true",
                        help="recompute grid points already in the store")
    parser.add_argument("--store", type=Path,
                        default=BENCH_DIR / "results" / "store")
    parser.add_argument("--out", type=Path,
                        default=BENCH_DIR / "results" / "robustness_noise.json")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    experiment = robustness_noise(
        smoke=args.smoke, sigmas=args.sigmas, fault_rates=args.fault_rates,
        trials=args.trials, images=args.images, seed=args.seed,
    )
    run = run_sweep(
        experiment.sweep,
        ResultStore(args.store),
        jobs=args.jobs,
        force=args.force,
        weights_cache_dir=str(BENCH_DIR / ".cache"),
        experiment=experiment,
        progress=print,
    )

    clean_accuracy = None
    for row in run.rows:
        if row["sigma"] == 0.0 and row["fault_rate"] == 0.0:
            # The zero-noise grid point runs as the deterministic clean
            # reference itself (no Monte Carlo trials).
            clean_accuracy = row["accuracy"]
            print(f"  sigma={row['sigma']:5.2f} faults={row['fault_rate']:7.4f}  "
                  f"clean accuracy {row['accuracy']:.3f} "
                  f"(remaining ops {row['remaining_ops_fraction']:.3f})")
        else:
            # The CI is None (JSON null) for single-trial runs.
            if row["accuracy_ci_low"] is None:
                ci = "undefined"
            else:
                ci = f"[{row['accuracy_ci_low']:.3f}, {row['accuracy_ci_high']:.3f}]"
            print(f"  sigma={row['sigma']:5.2f} faults={row['fault_rate']:7.4f}  "
                  f"acc {row['mean_accuracy']:.3f} ± {row['std_accuracy']:.3f} "
                  f"(CI {ci})  flip {row['mean_flip_rate']:.3f}  "
                  f"clean {row['clean_accuracy']:.3f}")

    # Self-check: every Monte Carlo grid point was aggregated against the
    # *shared* clean reference — which is exactly the zero-noise row.
    if clean_accuracy is not None:
        for row in run.rows:
            if "clean_accuracy" in row:
                assert row["clean_accuracy"] == clean_accuracy, \
                    "grid point used a different clean reference than the zero-noise run"

    run.record.save(args.out)
    print(f"robustness sweep: {run.stats.total} grid points "
          f"({run.stats.cached} cached, {run.stats.computed} computed), "
          f"{run.stats.elapsed_s:.1f}s -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
