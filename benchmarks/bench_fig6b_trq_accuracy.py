"""Experiment ``fig6b``: accuracy vs ADC resolution *with* TRQ.

Paper reference (Fig. 6b): with Twin-Range Quantization, accuracy stays close
to the quantized-model reference down to ~4-bit sensing precision — e.g.
ResNet-20/CIFAR-10 reaches 91.09% at 4 bits, which uniform conversion only
matches at 7+ bits.
"""

from __future__ import annotations

from conftest import FIG6_BITS, eval_image_count

from repro.core import CoDesignOptimizer, SearchSpaceConfig, uniform_adc_configs
from repro.report import fig6_accuracy_record, format_table


def test_fig6b_trq_accuracy(benchmark, workloads, results_dir):
    num_eval = eval_image_count()

    def run():
        accuracy_by_config = {}
        ops_by_config = {}
        uniform_4bit = {}
        for name, workload in workloads.items():
            split = workload.eval_split(num_eval)
            images, labels = split.images, split.labels
            samples = workload.simulator.collect_bitline_distributions(
                workload.calibration.images[:16], batch_size=8, seed=0
            )
            uniform_4bit[name] = workload.simulator.evaluate(
                images, labels, uniform_adc_configs(samples, bits=4), batch_size=16
            ).accuracy
            optimizer = CoDesignOptimizer(
                workload.model,
                workload.calibration.images,
                workload.calibration.labels,
                search_space=SearchSpaceConfig(num_v_grid_candidates=16),
                max_samples_per_layer=8192,
            )
            series = {}
            ops_series = {}
            for bits in FIG6_BITS:
                result = optimizer.run(
                    images, labels, batch_size=16,
                    use_accuracy_loop=False, initial_n_max=bits,
                )
                series[str(bits)] = result.final_accuracy
                ops_series[str(bits)] = result.remaining_ops_fraction
                if bits == FIG6_BITS[0]:
                    series["ideal"] = result.baseline_accuracy
            accuracy_by_config[name] = series
            ops_by_config[name] = ops_series
        return accuracy_by_config, ops_by_config, uniform_4bit

    accuracy_by_config, ops_by_config, uniform_4bit = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    record = fig6_accuracy_record(
        "fig6b",
        "Accuracy vs ADC resolution with TRQ",
        "TRQ at 4-bit sensing matches uniform conversion at 7-8 bits (Fig. 6b)",
        accuracy_by_config,
    )
    record.metadata["remaining_ops_fraction"] = ops_by_config
    record.metadata["uniform_4bit_accuracy"] = uniform_4bit
    record.metadata["eval_images"] = num_eval
    record.save(results_dir / "fig6b.json")
    print()
    print(format_table(record.rows))

    for name, series in accuracy_by_config.items():
        ideal = series["ideal"]
        # The paper's central comparison: at the same 4-bit sensing budget,
        # TRQ preserves at least as much accuracy as uniform conversion.
        assert series["4"] >= uniform_4bit[name] - 1e-9
        # And at the full 8-bit budget TRQ is essentially lossless.
        assert series["8"] >= ideal - 0.1
