"""Experiment ``fig6b``: accuracy vs ADC resolution *with* TRQ.

Paper reference (Fig. 6b): with Twin-Range Quantization, accuracy stays close
to the quantized-model reference down to ~4-bit sensing precision — which
uniform conversion only matches at 7+ bits.

Each sensing precision is one Algorithm 1 ``calibration`` job
(``initial_n_max=bits``) on the experiment runner; the uniform 4-bit
comparison point is a ``uniform_calibrated`` evaluate job shared (by content
address) with the Fig. 6a sweep.  Each calibration job builds a fresh
optimizer, so grid points are independent and order-free — unlike the
pre-port loop that reused one optimizer's subsampling RNG across bit-widths.

Run::

    python benchmarks/bench_fig6b_trq_accuracy.py [--smoke] [--jobs N]
"""

from __future__ import annotations

from figure_shim import (
    build_arg_parser,
    env_eval_images,
    env_preset,
    env_workload_names,
    run_figure,
)

from repro.experiments import ResultStore  # noqa: E402
from repro.experiments.presets import fig6b  # noqa: E402
from repro.report.figures import fig6b_record_from_run  # noqa: E402


def main(argv=None) -> int:
    args = build_arg_parser(__doc__).parse_args(argv)
    experiment = fig6b(
        smoke=args.smoke,
        workload_names=env_workload_names() if not args.smoke else None,
        preset=env_preset(),
        images=env_eval_images(),
    )
    run = run_figure(experiment, args)

    record = fig6b_record_from_run(run, ResultStore(args.store))
    uniform_4bit = record.metadata["uniform_4bit_accuracy"]
    series_by_workload = {}
    for row in record.rows:
        series_by_workload.setdefault(row["workload"], {})[row["config"]] = row["accuracy"]
    for name, series in series_by_workload.items():
        # Guards keep tolerated failures (--max-failures) from turning the
        # claim checks into KeyErrors: missing rows skip their assertion.
        if "4" in series and name in uniform_4bit:
            # The paper's central comparison: at the same 4-bit sensing
            # budget, TRQ preserves at least as much accuracy as uniform.
            assert series["4"] >= uniform_4bit[name] - 1e-9, (name, series)
        if "8" in series and "ideal" in series:
            # And at the full 8-bit budget TRQ is essentially lossless.
            assert series["8"] >= series["ideal"] - 0.1, (name, series)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
