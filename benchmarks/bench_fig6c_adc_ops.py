"""Experiment ``fig6c``: remaining A/D operations with TRQ.

Paper reference (Fig. 6c): with TRQ (4-bit upper bound), the ADC dynamic
reading energy — proportional to the number of A/D operations — is reduced to
42%-62% of the 8-op/conversion baseline, i.e. a 1.6-2.3x improvement.

One 4-bit Algorithm 1 ``calibration`` job per workload on the experiment
runner; the per-layer A/D operation counters are part of the stored
calibration payload, and the figure record is rebuilt from them
byte-identically to the pre-port pipeline
(``tests/test_figure_pipeline.py`` asserts this on the smoke grid).

Run::

    python benchmarks/bench_fig6c_adc_ops.py [--smoke] [--jobs N]
"""

from __future__ import annotations

from figure_shim import (
    build_arg_parser,
    env_eval_images,
    env_preset,
    env_workload_names,
    run_figure,
)

from repro.experiments import ResultStore  # noqa: E402
from repro.experiments.presets import fig6c  # noqa: E402
from repro.report.figures import fig6c_record_from_run  # noqa: E402


def main(argv=None) -> int:
    args = build_arg_parser(__doc__).parse_args(argv)
    experiment = fig6c(
        smoke=args.smoke,
        workload_names=env_workload_names() if not args.smoke else None,
        preset=env_preset(),
        images=env_eval_images(),
    )
    run = run_figure(experiment, args)

    record = fig6c_record_from_run(run, ResultStore(args.store))
    accuracy = record.metadata["accuracy_ideal_vs_trq"]
    if not args.smoke:
        for row in record.rows:
            name, fraction = row["workload"], row["remaining_fraction"]
            # Allow a wider band than the paper's 42%-62% because the
            # workloads are scaled-down synthetic ones, but the reduction
            # must be real.
            assert 0.30 <= fraction <= 0.80, (name, fraction)
            # Small evaluation subsets make each image worth ~3% accuracy;
            # keep a correspondingly loose bound on the drop at 4 bits.
            assert accuracy[name]["trq"] >= accuracy[name]["ideal"] - 0.2, (
                name, accuracy[name],
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
