"""Experiment ``fig6c``: remaining A/D operations with TRQ.

Paper reference (Fig. 6c): with TRQ (4-bit upper bound), the ADC dynamic
reading energy — proportional to the number of A/D operations — is reduced to
42%-62% of the 8-op/conversion baseline, i.e. a 1.6-2.3x improvement.
"""

from __future__ import annotations

from conftest import eval_image_count

from repro.core import CoDesignOptimizer, SearchSpaceConfig
from repro.report import fig6c_ops_record, format_table


def test_fig6c_remaining_ad_operations(benchmark, workloads, results_dir):
    num_eval = eval_image_count()

    def run():
        remaining = {}
        per_layer = {}
        accuracy = {}
        for name, workload in workloads.items():
            split = workload.eval_split(num_eval)
            optimizer = CoDesignOptimizer(
                workload.model,
                workload.calibration.images,
                workload.calibration.labels,
                search_space=SearchSpaceConfig(num_v_grid_candidates=16),
                max_samples_per_layer=8192,
            )
            result = optimizer.run(
                split.images, split.labels, batch_size=16,
                use_accuracy_loop=False, initial_n_max=4,
            )
            final = workload.simulator.evaluate(
                split.images, split.labels, result.adc_configs, batch_size=16
            )
            remaining[name] = final.remaining_ops_fraction
            per_layer[name] = final.per_layer_remaining_fraction()
            accuracy[name] = (result.baseline_accuracy, final.accuracy)
        return remaining, per_layer, accuracy

    remaining, per_layer, accuracy = benchmark.pedantic(run, rounds=1, iterations=1)

    record = fig6c_ops_record(remaining, per_layer=per_layer)
    record.metadata["accuracy_ideal_vs_trq"] = {
        name: {"ideal": a, "trq": b} for name, (a, b) in accuracy.items()
    }
    record.metadata["eval_images"] = num_eval
    record.save(results_dir / "fig6c.json")
    print()
    print(format_table(record.rows))

    for name, fraction in remaining.items():
        # Allow a wider band than the paper's 42%-62% because the workloads
        # are scaled-down synthetic ones, but the reduction must be real.
        assert 0.30 <= fraction <= 0.80, (name, fraction)
        ideal_acc, trq_acc = accuracy[name]
        # Small evaluation subsets make each image worth ~3% accuracy; keep a
        # correspondingly loose bound on the allowed drop at the 4-bit budget.
        assert trq_acc >= ideal_acc - 0.2
