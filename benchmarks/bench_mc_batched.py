"""Benchmark the batched Monte Carlo kernel vs the per-trial loop.

``MappedMVMLayer.matmul_trials`` pushes a leading ``trials`` axis through
the fused cycle/segment kernel (see :mod:`repro.crossbar.mapping`): one
noise-perturb, one integer-LUT gather and one blocked contraction cover a
whole group of Monte Carlo trials instead of ``trials`` separate kernel
invocations.  Under the numpy array backend the contract is **bit-identity**
— ``results[t]`` equals the solo ``matmul`` of trial ``t`` exactly, per-trial
A/D operation totals and region statistics included.

Two measurements are reported:

* **datapath** — per-layer ``matmul_trials`` throughput against the
  per-trial ``matmul`` loop at the regime the batching targets: tiny
  per-call row counts (``MC_ROWS = 1``, one image through an FC-sized MVM
  batch) where the per-trial loop is dominated by per-call fixed costs
  (LUT composition, gather setup, Python dispatch).  The ``MIN_SPEEDUP``
  assertion applies to the **narrow layers** (``cols <= NARROW_COLS``),
  where those fixed costs dominate; wide layers are compute-bound and
  reported without a gate.
* **end-to-end** — ``PimSimulator.run_monte_carlo`` with ``trial_batch=1``
  (the per-trial oracle) vs ``trial_batch=TRIALS``, asserting **byte
  identical** Monte Carlo artifacts (trial accuracies, flip rates, summary
  statistics and per-layer robustness stats) plus a lenient wall-time
  sanity bound — the full pipeline includes engine-independent overhead
  (im2col, forward plumbing), so its speedup is small and noisy and is
  reported, not gated.

The trial-batch-aware scratch accounting of
:func:`repro.sim.pim_layer.throughput_chunk_size` is sanity-checked here as
well: more trials per invocation must never enlarge the physical working
set.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Dict, List

import numpy as np
import pytest

from conftest import RESULTS_DIR

from repro.adc import build_adc, twin_range_config
from repro.core import TRQParams
from repro.datasets import build_dataset
from repro.nn.models import build_model
from repro.nonideal.stack import NonIdealityStack, TrialNoiseStates
from repro.quantization import quantize_model
from repro.quantization.ptq import find_mvm_layers
from repro.sim import PimSimulator
from repro.sim.pim_layer import MIN_CHUNK_SIZE, PimBackend, throughput_chunk_size

#: Required wall-clock advantage of the batched kernel on narrow layers.
MIN_SPEEDUP = 5.0

#: Monte Carlo trials per batched kernel invocation.
TRIALS = 16

#: MVM rows per kernel call — the overhead-bound small-batch regime the
#: batching targets (one image through a fully connected layer).
MC_ROWS = 1

#: Layers with at most this many bit-line columns are gated; wider layers
#: are compute-bound (the contraction dominates) and only reported.
NARROW_COLS = 128

#: Twin-range configuration applied to every layer.
TRQ_PARAMS = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)

#: The noise stack of the Monte Carlo runs: quantized conductance variation
#: keeps the fast engine on its integer-LUT path (the batched kernel's
#: primary target) while still exercising per-trial static device state.
NOISE_SPEC = [{"model": "conductance_variation", "sigma": 0.08, "quantize": True}]

#: End-to-end wall-time sanity bound: the batched path must never be a
#: regression beyond measurement noise (its end-to-end advantage is real
#: but small, so this is a guard rail, not the perf gate).
MAX_END_TO_END_RATIO = 1.5


def _best_of(callable_, repeats: int = 5) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust on shared VMs)."""
    callable_()  # warm-up: LUT/gather caches, scratch buffers, BLAS paths
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def lenet_tiny_quantized():
    """A tiny-preset LeNet-5, quantized on synthetic MNIST calibration."""
    dataset = build_dataset("mnist", train_size=64, test_size=32, seed=0)
    model = build_model("lenet5", preset="tiny", num_classes=dataset.num_classes, rng=0)
    model.eval()
    quantized = quantize_model(model, dataset.train.images[:32])
    return dataset, quantized


def _mc_payload_fingerprint(result) -> str:
    """Canonical byte-level fingerprint of a Monte Carlo artifact."""
    return json.dumps(
        {
            "summary": result.summary(),
            "accuracies": result.accuracies.tobytes().hex(),
            "flip_rates": result.flip_rates.tobytes().hex(),
            "layer_stats": {
                name: dataclasses.asdict(stats)
                for name, stats in result.layer_stats.items()
            },
        },
        sort_keys=True,
    )


def test_mc_batched_speedup_and_byte_identity(benchmark, lenet_tiny_quantized, results_dir):
    dataset, quantized = lenet_tiny_quantized
    rng = np.random.default_rng(0)
    config = twin_range_config(TRQ_PARAMS)
    names = [name for name, _ in find_mvm_layers(quantized.model)]
    configs = {name: config for name in names}

    # ------------------------------------------------------------------ #
    # trial-batch scratch accounting: more trials per invocation must
    # shrink (never grow) the physical chunk, and N=1 is the solo grid
    # ------------------------------------------------------------------ #
    for cycles, cols in ((4, 28), (4, 420), (8, 1680)):
        solo = throughput_chunk_size(cycles, cols)
        assert throughput_chunk_size(cycles, cols, trial_batch=1) == solo
        previous = solo
        for trial_batch in (2, 4, 16):
            chunk = throughput_chunk_size(cycles, cols, trial_batch=trial_batch)
            assert MIN_CHUNK_SIZE <= chunk <= previous, (
                f"chunk must shrink monotonically with trial_batch "
                f"(cycles={cycles}, cols={cols}, N={trial_batch})"
            )
            previous = chunk

    # ------------------------------------------------------------------ #
    # datapath: matmul_trials vs the per-trial matmul loop at MC_ROWS
    # ------------------------------------------------------------------ #
    backend = PimBackend(quantized, adc_configs=configs)
    base_stack = NonIdealityStack(NOISE_SPEC, seed=5)
    trial_stacks = [base_stack.derive_trial(3, t) for t in range(TRIALS)]

    per_layer = {}
    narrow_total = {"loop": 0.0, "batched": 0.0}
    for name in names:
        lq = quantized.layer(name)
        kind = "conv" if lq.weight_codes.ndim == 4 else "linear"
        mapped = backend._mapped_layer(name, kind)
        cols = 2 * mapped.num_weight_planes * mapped.out_features
        max_code = (1 << mapped.num_input_cycles) - 1
        # Distinct per-trial activation codes: the general (conservative)
        # case — inside a real MC run the trials' activations diverge after
        # the first noisy layer.
        tiled = rng.integers(
            0, max_code + 1, size=(TRIALS, MC_ROWS, mapped.in_features)
        )

        loop_states = [stack.bind_mapped(name, mapped) for stack in trial_stacks]
        loop_adcs = [build_adc(config) for _ in range(TRIALS)]
        batched_noise = TrialNoiseStates(
            [stack.bind_mapped(name, mapped) for stack in trial_stacks]
        )
        shared_lut_cache: Dict[object, object] = {}
        batched_adcs = []
        for _ in range(TRIALS):
            adc = build_adc(config)
            if hasattr(adc, "transfer_lut"):
                adc._lut_cache = shared_lut_cache
            batched_adcs.append(adc)

        def run_loop() -> tuple:
            outputs: List[np.ndarray] = []
            ops = 0
            for t in range(TRIALS):
                loop_states[t].next_chunk()
                merged, trial_ops = mapped.matmul(
                    tiled[t], adc=loop_adcs[t], engine="fast", noise=loop_states[t]
                )
                outputs.append(merged)
                ops += trial_ops
            mapped.release_scratch()
            return outputs, ops

        def run_batched() -> tuple:
            batched_noise.next_chunk()
            merged, ops = mapped.matmul_trials(
                tiled, batched_adcs, batched_noise, engine="fast"
            )
            mapped.release_scratch()
            return merged, ops

        ref_out, ref_ops = run_loop()
        got_out, got_ops = run_batched()
        assert ref_ops == sum(got_ops), f"{name}: operation totals diverge"
        for t in range(TRIALS):
            assert np.array_equal(ref_out[t], got_out[t]), (
                f"{name}: trial {t} outputs not bit-identical"
            )

        loop_time = _best_of(run_loop)
        batched_time = _best_of(run_batched)
        narrow = cols <= NARROW_COLS
        per_layer[name] = {
            "cols": cols,
            "rows": MC_ROWS,
            "narrow": narrow,
            "loop_s": loop_time,
            "batched_s": batched_time,
            "speedup": loop_time / batched_time,
        }
        if narrow:
            narrow_total["loop"] += loop_time
            narrow_total["batched"] += batched_time

    assert narrow_total["batched"] > 0.0, (
        f"no layer with cols <= {NARROW_COLS}: the gate set is empty"
    )
    speedup = narrow_total["loop"] / narrow_total["batched"]

    # ------------------------------------------------------------------ #
    # end-to-end: run_monte_carlo trial_batch=1 (oracle) vs TRIALS
    # ------------------------------------------------------------------ #
    images = dataset.test.images[:8]
    labels = dataset.test.labels[:8]
    simulator = PimSimulator(quantized, engine="fast")
    stack = NonIdealityStack(NOISE_SPEC, seed=5)
    end_to_end: Dict[str, object] = {}
    for label, trial_batch in (("loop", 1), ("batched", TRIALS)):
        start = time.perf_counter()
        end_to_end[label] = simulator.run_monte_carlo(
            images,
            labels,
            stack,
            configs,
            trials=TRIALS,
            batch_size=8,
            seed=3,
            trial_batch=trial_batch,
        )
        end_to_end[label + "_s"] = time.perf_counter() - start
    fingerprint_loop = _mc_payload_fingerprint(end_to_end["loop"])
    fingerprint_batched = _mc_payload_fingerprint(end_to_end["batched"])
    assert fingerprint_loop == fingerprint_batched, (
        "batched Monte Carlo artifact is not byte-identical to the "
        "per-trial oracle"
    )
    end_to_end_ratio = end_to_end["batched_s"] / end_to_end["loop_s"]
    assert end_to_end_ratio <= MAX_END_TO_END_RATIO, (
        f"batched end-to-end wall time is {end_to_end_ratio:.2f}x the "
        f"per-trial loop (sanity bound {MAX_END_TO_END_RATIO}x)"
    )

    # Register the gated speedup with the benchmark harness for the report.
    benchmark.pedantic(lambda: None, setup=None, rounds=1, iterations=1)
    benchmark.extra_info["mc_batched_speedup"] = speedup

    record = {
        "experiment": "mc_batched",
        "trials": TRIALS,
        "rows": MC_ROWS,
        "narrow_cols": NARROW_COLS,
        "noise": NOISE_SPEC,
        "per_layer": per_layer,
        "datapath": {
            "loop_s": narrow_total["loop"],
            "batched_s": narrow_total["batched"],
            "speedup": speedup,
        },
        "end_to_end": {
            "loop_s": end_to_end["loop_s"],
            "batched_s": end_to_end["batched_s"],
            "speedup": end_to_end["loop_s"] / end_to_end["batched_s"],
            "byte_identical": True,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(results_dir / "mc_batched.json", "w") as handle:
        json.dump(record, handle, indent=2)

    print()
    for name, row in per_layer.items():
        tag = "narrow" if row["narrow"] else "wide  "
        print(f"  {name:14s} {tag} cols={row['cols']:5d} "
              f"loop {row['loop_s']*1e3:8.2f} ms   "
              f"batched {row['batched_s']*1e3:8.2f} ms   {row['speedup']:5.2f}x")
    print(f"  {'narrow datapath':21s} loop {narrow_total['loop']*1e3:8.2f} ms   "
          f"batched {narrow_total['batched']*1e3:8.2f} ms   {speedup:5.2f}x")
    print(f"  end-to-end speedup {record['end_to_end']['speedup']:.2f}x "
          f"(includes engine-independent forward overhead; reported, not gated)")

    assert speedup >= MIN_SPEEDUP, (
        f"batched Monte Carlo narrow-layer speedup {speedup:.2f}x is below "
        f"the required {MIN_SPEEDUP}x at {TRIALS} trials"
    )
