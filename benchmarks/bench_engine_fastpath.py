"""Benchmark ``engine="fast"`` vs ``engine="reference"`` on LeNet-5.

The fused cycle/segment kernel with integer-domain LUT ADCs (see
:mod:`repro.crossbar.mapping`) must be **bit-identical** to the per-(cycle,
segment) reference loop — same merged outputs, same A/D-operation totals,
same region statistics — while being at least ``MIN_SPEEDUP``× faster in
wall-clock on the paper's LeNet-5 topology (6/16 conv channels, 120/84/10
fully connected).

Two measurements are reported:

* **datapath** — per-layer ``MappedMVMLayer.matmul`` throughput on
  activation-code streams sized like a 256-image evaluation batch
  (``chunk_size`` 16384, the fast engine's throughput configuration).  The
  speedup assertion applies here: this is the loop the ISSUE identifies as
  the hot path behind every accuracy / Fig. 6 / calibration experiment.
* **end-to-end** — a full ``PimSimulator.evaluate`` on real images through
  both engines, asserting bit-identical logits and identical per-layer
  operation/region statistics (this includes engine-independent overhead
  such as im2col, so its speedup is smaller).

Model weights are random (training does not change the engine arithmetic);
inputs are uniform activation codes — LUT, gather, bincount and merge costs
are data-independent, so the timing is representative of calibrated runs.
"""

from __future__ import annotations

import json
import time
from typing import Dict

import numpy as np
import pytest

from conftest import RESULTS_DIR

from repro.adc import twin_range_config
from repro.adc.trq import TwinRangeAdc
from repro.core import TRQParams
from repro.crossbar import MappedMVMLayer
from repro.datasets import build_dataset
from repro.nn.models import build_model
from repro.quantization import quantize_model
from repro.quantization.ptq import find_mvm_layers
from repro.sim import PimSimulator

#: Required wall-clock advantage of the fast engine on the datapath.
MIN_SPEEDUP = 5.0

#: MVMs per inner chunk — the throughput configuration the fast engine targets.
CHUNK_SIZE = 16_384

#: Rows of the per-layer activation-code streams (conv rows correspond to a
#: 256-image batch of the 8×8 conv2 feature map; fc layers see one row per
#: image).
CONV_ROWS = 16_384
FC_ROWS = 256

#: Twin-range configuration applied to every layer (the paper's 4-bit-style
#: upper bound: ``ν + NR1 = 3`` dense ops, ``ν + NR2 = 6`` sparse ops).
TRQ_PARAMS = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)


def _best_of(callable_, repeats: int = 4) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust on shared VMs)."""
    callable_()  # warm-up: LUT construction, scratch buffers, BLAS paths
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def lenet_paper_quantized():
    """The paper-scale LeNet-5, quantized on synthetic MNIST calibration."""
    dataset = build_dataset("mnist", train_size=64, test_size=32, seed=0)
    model = build_model("lenet5", preset="paper", num_classes=dataset.num_classes, rng=0)
    model.eval()
    quantized = quantize_model(model, dataset.train.images[:32])
    return dataset, quantized


def test_engine_fastpath_speedup_and_bit_identity(benchmark, lenet_paper_quantized, results_dir):
    dataset, quantized = lenet_paper_quantized
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # end-to-end: bit-identical logits and statistics on real images
    # ------------------------------------------------------------------ #
    images = dataset.test.images[:16]
    labels = dataset.test.labels[:16]
    configs = {
        name: twin_range_config(TRQ_PARAMS)
        for name, _ in find_mvm_layers(quantized.model)
    }
    end_to_end: Dict[str, object] = {}
    for engine in ("reference", "fast"):
        simulator = PimSimulator(quantized, chunk_size=CHUNK_SIZE, engine=engine)
        start = time.perf_counter()
        end_to_end[engine] = simulator.evaluate(images, labels, configs, batch_size=16)
        end_to_end[engine + "_time"] = time.perf_counter() - start
    ref_result, fast_result = end_to_end["reference"], end_to_end["fast"]
    assert np.array_equal(ref_result.logits, fast_result.logits), \
        "fast engine logits are not bit-identical to the reference loop"
    for name in ref_result.layer_stats:
        a = ref_result.layer_stats[name]
        b = fast_result.layer_stats[name]
        assert (a.conversions, a.operations, a.in_r1, a.in_r2) == (
            b.conversions, b.operations, b.in_r1, b.in_r2
        ), f"operation/region statistics diverge for layer {name}"

    # ------------------------------------------------------------------ #
    # datapath: per-layer matmul throughput at the benchmark configuration
    # ------------------------------------------------------------------ #
    per_layer = {}
    total = {"reference": 0.0, "fast": 0.0}
    for name, _ in find_mvm_layers(quantized.model):
        lq = quantized.layer(name)
        if lq.kind == "conv":
            weight_matrix = lq.weight_codes.reshape(lq.weight_codes.shape[0], -1).T
            rows = CONV_ROWS
        else:
            weight_matrix = lq.weight_codes.T
            rows = FC_ROWS
        mapped = MappedMVMLayer(weight_matrix, quantized.config)
        codes = rng.integers(
            0, 1 << quantized.config.activation_bits, size=(rows, mapped.in_features)
        )

        def run(engine: str):
            adc = TwinRangeAdc(TRQ_PARAMS)
            outputs = []
            ops = 0
            for start in range(0, rows, CHUNK_SIZE):
                merged, chunk_ops = mapped.matmul(
                    codes[start : start + CHUNK_SIZE], adc=adc, engine=engine
                )
                outputs.append(merged)
                ops += chunk_ops
            return np.concatenate(outputs, axis=0), ops, adc.stats

        ref_out, ref_ops, ref_stats = run("reference")
        fast_out, fast_ops, fast_stats = run("fast")
        assert np.array_equal(ref_out, fast_out), f"{name}: outputs not bit-identical"
        assert ref_ops == fast_ops, f"{name}: operation totals diverge"
        assert ref_stats == fast_stats, f"{name}: conversion statistics diverge"

        ref_time = _best_of(lambda: run("reference"))
        fast_time = _best_of(lambda: run("fast"))
        per_layer[name] = {
            "rows": rows,
            "reference_s": ref_time,
            "fast_s": fast_time,
            "speedup": ref_time / fast_time,
        }
        total["reference"] += ref_time
        total["fast"] += fast_time

    speedup = total["reference"] / total["fast"]

    # Register the fast datapath with the benchmark harness for the JSON report.
    benchmark.pedantic(
        lambda: None, setup=None, rounds=1, iterations=1
    )
    benchmark.extra_info["datapath_speedup"] = speedup

    record = {
        "experiment": "engine_fastpath",
        "chunk_size": CHUNK_SIZE,
        "trq_params": {"n_r1": TRQ_PARAMS.n_r1, "n_r2": TRQ_PARAMS.n_r2,
                       "m": TRQ_PARAMS.m, "bias": TRQ_PARAMS.bias},
        "per_layer": per_layer,
        "datapath": {
            "reference_s": total["reference"],
            "fast_s": total["fast"],
            "speedup": speedup,
        },
        "end_to_end": {
            "reference_s": end_to_end["reference_time"],
            "fast_s": end_to_end["fast_time"],
            "speedup": end_to_end["reference_time"] / end_to_end["fast_time"],
            "bit_identical_logits": True,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(results_dir / "engine_fastpath.json", "w") as handle:
        json.dump(record, handle, indent=2)

    print()
    for name, row in per_layer.items():
        print(f"  {name:14s} ref {row['reference_s']*1e3:8.1f} ms   "
              f"fast {row['fast_s']*1e3:8.1f} ms   {row['speedup']:5.2f}x")
    print(f"  {'datapath':14s} ref {total['reference']*1e3:8.1f} ms   "
          f"fast {total['fast']*1e3:8.1f} ms   {speedup:5.2f}x")
    print(f"  end-to-end speedup {record['end_to_end']['speedup']:.2f}x "
          f"(includes engine-independent im2col/quantize overhead)")

    assert speedup >= MIN_SPEEDUP, (
        f"fast engine datapath speedup {speedup:.2f}x is below the "
        f"required {MIN_SPEEDUP}x"
    )
