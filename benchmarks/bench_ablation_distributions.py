"""Ablation ``abl-dist``: calibration behaviour across distribution types.

Paper Section IV-B claims the scheme adapts to different bit-line value
distributions: the zero-skewed "ideal" case, normal-like unimodal cases
(handled through the ``bias`` offset) and multi-modal/flat cases (handled by
equal-width early stopping in both ranges).  This ablation runs the per-layer
search on controlled synthetic distributions and records what it picks.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DistributionType,
    SearchSpaceConfig,
    TwinRangeCalibrator,
    summarize_distribution,
)
from repro.report import ExperimentRecord, format_table


def _distributions(seed: int = 0):
    rng = np.random.default_rng(seed)
    return {
        "ideal-skewed": np.clip(np.round(np.concatenate([
            rng.exponential(3.0, size=20_000), rng.uniform(40, 120, size=800)
        ])), 0, 128),
        "normal": np.clip(np.round(rng.normal(60, 5, size=20_000)), 0, 128),
        "bimodal": np.clip(np.round(np.concatenate([
            rng.normal(20, 4, size=10_000), rng.normal(90, 6, size=10_000)
        ])), 0, 128),
        "flat": np.round(rng.uniform(0, 128, size=20_000)),
    }


def test_ablation_distribution_types(benchmark, results_dir):
    def run():
        calibrator = TwinRangeCalibrator(
            search_space=SearchSpaceConfig(num_v_grid_candidates=20),
            max_samples_per_layer=16_384,
        )
        rows = []
        for name, samples in _distributions().items():
            summary = summarize_distribution(samples)
            result = calibrator.calibrate({name: samples})
            layer = result.layers[name]
            setting = layer.setting
            rows.append({
                "distribution": name,
                "classified_as": summary.kind.value,
                "scheme": "TRQ" if setting.use_trq else f"uniform {setting.uniform_bits}b",
                "NR1": setting.trq.n_r1 if setting.use_trq else "-",
                "NR2": setting.trq.n_r2 if setting.use_trq else "-",
                "M": setting.trq.m if setting.use_trq else "-",
                "bias": setting.trq.bias if setting.use_trq else "-",
                "mean_ops_per_conversion": round(layer.predicted_mean_ops, 2),
                "rmse": round(layer.predicted_mse ** 0.5, 3),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        experiment_id="abl-dist",
        description="Per-layer search outcome for different BL distributions",
        paper_reference="Section IV-B: compatibility with ideal / normal / other distributions",
        rows=rows,
    )
    record.save(results_dir / "ablation_distributions.json")
    print()
    print(format_table(rows))

    by_name = {row["distribution"]: row for row in rows}
    # The skewed case is classified as ideal and saves the most operations.
    assert by_name["ideal-skewed"]["classified_as"] == DistributionType.IDEAL.value
    assert by_name["ideal-skewed"]["mean_ops_per_conversion"] < 6.0
    # The normal case is recognised and the biased window is available to it.
    assert by_name["normal"]["classified_as"] == DistributionType.NORMAL.value
    # Hard distributions never cost more than the 8-op baseline.
    assert all(row["mean_ops_per_conversion"] <= 8.0 for row in rows)
