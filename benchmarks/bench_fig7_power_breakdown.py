"""Experiment ``fig7``: accelerator power/energy breakdown.

Paper reference (Fig. 7): ADC dominates the ISAAC baseline power (the paper's
motivation quotes >60%); the TRQ design significantly reduces the ADC
component without touching the crossbar/DAC/buffer/register/router
components, and beats the reduced-resolution uniform-ADC alternative that
reaches comparable accuracy (7-8 bits).
"""

from __future__ import annotations

from conftest import eval_image_count

from repro.arch import AcceleratorMapping, PowerModel, breakdown_table, compare_configurations
from repro.core import CoDesignOptimizer, SearchSpaceConfig
from repro.nn.models import workload_info
from repro.report import fig7_power_record, format_table


def test_fig7_power_breakdown(benchmark, workloads, results_dir):
    num_eval = eval_image_count()

    def run():
        comparisons = []
        for name, workload in workloads.items():
            split = workload.eval_split(num_eval)
            optimizer = CoDesignOptimizer(
                workload.model,
                workload.calibration.images,
                workload.calibration.labels,
                search_space=SearchSpaceConfig(num_v_grid_candidates=16),
                max_samples_per_layer=8192,
            )
            result = optimizer.run(
                split.images, split.labels, batch_size=16,
                use_accuracy_loop=False, initial_n_max=4,
            )
            trq_eval = workload.simulator.evaluate(
                split.images, split.labels, result.adc_configs, batch_size=16
            )
            trq_ops = {
                layer: stats.mean_ops_per_conversion
                for layer, stats in trq_eval.layer_stats.items()
            }
            info = workload_info(name)
            image_shape = (info["in_channels"], info["image_size"], info["image_size"])
            mapping = AcceleratorMapping(workload.quantized, image_shape)
            # The uniform alternative needs 7-8 bits for comparable accuracy.
            comparisons.append(
                compare_configurations(name, mapping, trq_ops, uniform_bits=7,
                                       power_model=PowerModel())
            )
        return comparisons

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = breakdown_table(comparisons)
    record = fig7_power_record(rows)
    record.metadata["adc_reduction_vs_isaac"] = {
        c.workload: c.adc_reduction_vs_baseline("Ours/4b") for c in comparisons
    }
    record.save(results_dir / "fig7.json")
    print()
    print(format_table(rows))

    for comparison in comparisons:
        baseline = comparison.by_label("ISAAC")
        ours = comparison.by_label("Ours/4b")
        uq = comparison.by_label("UQ(7b)")
        fractions = baseline.fractions()
        # ADC is the dominant component of the baseline...
        assert fractions["ADC"] == max(fractions.values())
        assert fractions["ADC"] > 0.5
        # ...TRQ reduces ADC energy substantially and beats the UQ alternative...
        assert comparison.adc_reduction_vs_baseline("Ours/4b") > 1.3
        assert ours.per_component["ADC"] < uq.per_component["ADC"]
        # ...while all other components are untouched.
        for component in ("Crossbar", "DAC", "Buffer", "Register", "Bus&Router"):
            assert ours.per_component[component] == baseline.per_component[component]
