"""Experiment ``fig7``: accelerator power/energy breakdown.

Paper reference (Fig. 7): ADC dominates the ISAAC baseline power (the paper's
motivation quotes >60%); the TRQ design significantly reduces the ADC
component without touching the crossbar/DAC/buffer/register/router
components, and beats the reduced-resolution uniform-ADC alternative that
reaches comparable accuracy (7-8 bits).

One ``power`` job per workload on the experiment runner, with the power
model as a first-class axis; each job shares its 4-bit Algorithm 1
calibration sibling with the Fig. 6b/6c sweeps through the store (the
search runs once per workload across all three figures).

Run::

    python benchmarks/bench_fig7_power_breakdown.py [--smoke] [--jobs N]
"""

from __future__ import annotations

from figure_shim import (
    build_arg_parser,
    env_eval_images,
    env_preset,
    env_workload_names,
    run_figure,
)

from repro.arch.power import COMPONENTS  # noqa: E402
from repro.experiments import ResultStore  # noqa: E402
from repro.experiments.presets import fig7  # noqa: E402
from repro.report.figures import fig7_record_from_run  # noqa: E402

UNIFORM_BITS = 7


def main(argv=None) -> int:
    args = build_arg_parser(__doc__).parse_args(argv)
    experiment = fig7(
        smoke=args.smoke,
        workload_names=env_workload_names() if not args.smoke else None,
        preset=env_preset(),
        images=env_eval_images(),
        uniform_bits=UNIFORM_BITS,
    )
    run = run_figure(experiment, args)

    record = fig7_record_from_run(run, ResultStore(args.store))
    by_workload = {}
    for row in record.rows:
        by_workload.setdefault(row["workload"], {})[row["config"]] = row
    for name, configs in by_workload.items():
        baseline = configs["ISAAC"]
        ours = configs["Ours/4b"]
        uq = configs[f"UQ({UNIFORM_BITS}b)"]
        fractions = {c: baseline[c] / baseline["total_J"] for c in COMPONENTS}
        # ADC is the dominant component of the baseline...
        assert fractions["ADC"] == max(fractions.values()), (name, fractions)
        assert fractions["ADC"] > 0.5, (name, fractions)
        # ...TRQ reduces ADC energy substantially and beats the UQ alternative...
        assert baseline["ADC"] / ours["ADC"] > 1.3, (name, baseline["ADC"], ours["ADC"])
        assert ours["ADC"] < uq["ADC"], (name, ours["ADC"], uq["ADC"])
        # ...while all other components are untouched.
        for component in ("Crossbar", "DAC", "Buffer", "Register", "Bus&Router"):
            assert ours[component] == baseline[component], (name, component)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
