"""Shared plumbing of the ``bench_fig*.py`` figure shims.

Since the figure-reproduction PR each figure benchmark is a *thin shim*: it
builds its grid through the corresponding :mod:`repro.experiments` preset,
submits it to the orchestration runner (content-addressed store, resume,
``--jobs N`` parallelism — exactly like the robustness sweeps) and renders
the paper-style tables from the stored rows via
:func:`repro.report.figures.render_figure_outputs`.  The heavy lifting and
the grid definitions live in ``src/repro``; the scripts here only parse
arguments, scale the sweep from the ``REPRO_BENCH_*`` environment knobs and
assert the figure's claims on the resulting record.

Every shim also verifies the store contract after its main run: rerunning
the same sweep back-to-back must be a full cache hit with a byte-identical
aggregate record.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.experiments import ResultStore, run_sweep  # noqa: E402
from repro.experiments.executors import EXECUTOR_NAMES  # noqa: E402
from repro.experiments.presets import FIGURE_WORKLOAD_NAMES  # noqa: E402
from repro.report.figures import render_figure_outputs  # noqa: E402


def env_workload_names() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", ",".join(FIGURE_WORKLOAD_NAMES))
    return [name.strip() for name in raw.split(",") if name.strip()]


def env_preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "tiny")


def env_eval_images() -> Optional[int]:
    raw = os.environ.get("REPRO_BENCH_EVAL_IMAGES")
    return int(raw) if raw else None


def build_arg_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=description,
        epilog="Workload selection/scale follows the REPRO_BENCH_WORKLOADS, "
               "REPRO_BENCH_PRESET and REPRO_BENCH_EVAL_IMAGES environment "
               "knobs shared by the whole benchmark suite.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep + training budget for CI (seconds)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default: serial)")
    parser.add_argument("--executor", choices=EXECUTOR_NAMES, default=None,
                        help="execution strategy (default: process pool iff "
                             "--jobs > 1)")
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="shard count of --executor sharded (default 2)")
    parser.add_argument("--force", action="store_true",
                        help="recompute jobs already in the store")
    parser.add_argument("--ascii", action="store_true",
                        help="also render the figure tables as ASCII bar "
                             "charts (<figure>.txt)")
    parser.add_argument("--max-failures", type=int, default=None, metavar="N",
                        help="tolerate up to N failed jobs (logged to the "
                             "store's failure log)")
    parser.add_argument("--store", type=Path,
                        default=BENCH_DIR / "results" / "store")
    parser.add_argument("--out-dir", type=Path,
                        default=BENCH_DIR / "results",
                        help="directory for the figure JSON/markdown/CSV tables")
    return parser


def record_bytes(run) -> bytes:
    return json.dumps(run.record.to_dict(), sort_keys=True).encode("utf-8")


def run_figure(experiment, args) -> "SweepRun":  # noqa: F821 - doc type
    """Execute one figure sweep, render its tables, verify the store contract."""
    store = ResultStore(args.store)
    cache_dir = str(BENCH_DIR / ".cache")
    run = run_sweep(
        experiment.sweep,
        store,
        jobs=args.jobs,
        force=args.force,
        weights_cache_dir=cache_dir,
        experiment=experiment,
        progress=print,
        max_failures=args.max_failures,
        executor=getattr(args, "executor", None),
        shards=getattr(args, "shards", 2),
    )
    print()
    print(run.record.to_table())

    formats = ("json", "md", "csv", "ascii") if getattr(args, "ascii", False) \
        else ("json", "md", "csv")
    written = render_figure_outputs(
        experiment.experiment_id, run, store, args.out_dir, formats=formats
    )
    for path in written:
        print(f"  wrote {path}")

    # Store contract: an immediate rerun is a full cache hit and reproduces
    # the aggregate byte for byte (this is also what makes interrupted runs
    # resume byte-identically — rows are read back from the artifacts).
    if not run.failures:
        rerun = run_sweep(
            experiment.sweep, store, weights_cache_dir=cache_dir,
            experiment=experiment,
        )
        assert rerun.stats.computed == 0 and rerun.stats.cached == rerun.stats.total, (
            f"rerun recomputed jobs: {rerun.stats}"
        )
        assert record_bytes(rerun) == record_bytes(run), (
            "rerun aggregate differs from the original run"
        )
        print(f"  cache check: rerun served all {rerun.stats.total} jobs from the store")

    print(f"{experiment.experiment_id}: {run.stats.total} jobs "
          f"({run.stats.cached} cached, {run.stats.computed} computed"
          + (f", {run.stats.failed} FAILED" if run.stats.failed else "")
          + f"), {run.stats.elapsed_s:.1f}s")
    return run
