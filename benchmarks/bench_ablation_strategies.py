"""Ablation ``abl-earlybird``: early-bird vs early-stopping vs both.

The paper's Section III-B describes two complementary strategies: "early
birds" (lossless fast conversions inside the dense range R1) and "early
stopping" (coarse conversions in the wide range R2).  This ablation isolates
their contributions on one workload by constraining the per-layer
configuration:

* ``early-bird only`` — R2 keeps (near) full precision, only R1 is fast;
* ``early-stop only`` — a single coarse uniform range (no R1 sweet spot);
* ``both`` (TRQ)      — the full twin-range scheme.
"""

from __future__ import annotations

from conftest import eval_image_count

from repro.adc import twin_range_config, uniform_config
from repro.core import CoDesignOptimizer, SearchSpaceConfig, TRQParams
from repro.report import ExperimentRecord, format_table


def _constrained_configs(calibration, resolution, mode):
    """Derive per-layer configs for one ablation mode from a TRQ calibration."""
    configs = {}
    for name, layer in calibration.layers.items():
        setting = layer.setting
        if setting.use_trq:
            trq = setting.trq
            if mode == "early-bird":
                params = TRQParams(n_r1=trq.n_r1, n_r2=min(resolution, 7), m=0,
                                   delta_r1=trq.delta_r1, bias=trq.bias)
                configs[name] = twin_range_config(params, resolution=resolution)
            elif mode == "early-stop":
                delta = trq.delta_r2 / (1 << (resolution - trq.n_r2))
                configs[name] = uniform_config(resolution=resolution, bits=trq.n_r2,
                                               v_grid=delta)
            else:
                configs[name] = twin_range_config(trq, resolution=resolution)
        else:
            delta = setting.uniform_delta / (1 << (resolution - setting.uniform_bits))
            configs[name] = uniform_config(resolution=resolution,
                                           bits=setting.uniform_bits, v_grid=delta)
    return configs


def test_ablation_search_strategies(benchmark, workloads, results_dir):
    name, workload = next(iter(workloads.items()))
    num_eval = eval_image_count()
    split = workload.eval_split(num_eval)

    def run():
        optimizer = CoDesignOptimizer(
            workload.model, workload.calibration.images, workload.calibration.labels,
            search_space=SearchSpaceConfig(num_v_grid_candidates=16),
            max_samples_per_layer=8192,
        )
        base = optimizer.run(split.images, split.labels, batch_size=16,
                             use_accuracy_loop=False, initial_n_max=4)
        rows = []
        for mode in ("early-bird", "early-stop", "both"):
            configs = _constrained_configs(base.calibration, 8, mode)
            result = workload.simulator.evaluate(split.images, split.labels, configs,
                                                 batch_size=16)
            rows.append({
                "mode": mode,
                "accuracy": result.accuracy,
                "remaining_ops_fraction": result.remaining_ops_fraction,
            })
        rows.append({
            "mode": "ideal",
            "accuracy": base.baseline_accuracy,
            "remaining_ops_fraction": 1.0,
        })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        experiment_id="abl-earlybird",
        description="Contribution of the early-bird and early-stopping strategies",
        paper_reference="Section III-B: the two strategies trade power vs accuracy differently",
        rows=rows,
        metadata={"workload": name, "eval_images": num_eval},
    )
    record.save(results_dir / "ablation_strategies.json")
    print()
    print(format_table(rows))

    by_mode = {row["mode"]: row for row in rows}
    # Early-bird alone saves fewer ops than the full scheme but loses no range;
    # the combined scheme must save at least as much as either single strategy.
    assert by_mode["both"]["remaining_ops_fraction"] <= by_mode["early-bird"]["remaining_ops_fraction"] + 1e-9
    # Early stopping alone keeps the op count low but is the least accurate
    # (or at best equal) of the three on a skewed distribution.
    assert by_mode["both"]["accuracy"] >= by_mode["early-stop"]["accuracy"] - 0.05
