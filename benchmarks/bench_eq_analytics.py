"""Experiment ``fig2/eq2-6``: analytic background-equation checks.

Regenerates the quantities the paper's background equations define for the
evaluation configuration (128x128 crossbars, 1-bit cells/DAC, 8-bit
weights/activations): the ideal ADC resolution (Eq. 2), the number of A/D
conversions per MVM (Eq. 3) and the per-conversion energy scaling (Eq. 6),
and micro-benchmarks the vectorised converter models.
"""

from __future__ import annotations

import numpy as np

from repro.adc import (
    AdcEnergyParams,
    TwinRangeAdc,
    UniformAdc,
    conversions_per_mvm,
    ideal_adc_resolution,
)
from repro.core import TRQParams
from repro.report import ExperimentRecord, format_table


def test_eq2_eq3_analytics(benchmark, results_dir):
    def run():
        record = ExperimentRecord(
            experiment_id="eq2-6",
            description="Background-equation analytics for the evaluation setup",
            paper_reference="Eq. 2 (ideal resolution), Eq. 3 (conversions/MVM), Eq. 6 (energy)",
        )
        for size in (64, 128, 256):
            record.add_row(quantity=f"RADC,ideal (S={size}, 1-bit ops)",
                           value=ideal_adc_resolution(size, 1, 1))
        record.add_row(quantity="RADC,ideal (S=128, 2-bit cell)",
                       value=ideal_adc_resolution(128, 1, 2))
        for in_features, out_features in ((576, 64), (1152, 128), (2304, 256)):
            record.add_row(
                quantity=f"conversions/MVM (in={in_features}, out={out_features})",
                value=conversions_per_mvm(128, in_features, out_features),
            )
        energy = AdcEnergyParams()
        record.add_row(quantity="Econvert @ 8 ops (pJ)",
                       value=energy.conversion_energy(8) * 1e12)
        record.add_row(quantity="Econvert @ 4.5 ops (pJ)",
                       value=energy.conversion_energy(1) * 4.5 * 1e12)
        return record

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    record.save(results_dir / "eq_analytics.json")
    print()
    print(record.to_table())
    assert record.rows[1]["value"] == 8  # S=128, 1-bit operands -> 8 bits


def test_adc_model_throughput_uniform(benchmark):
    """Micro-benchmark: vectorised uniform conversion of a large BL block."""
    adc = UniformAdc(bits=8, delta=1.0)
    values = np.random.default_rng(0).uniform(0, 128, size=200_000)
    benchmark(adc.convert, values)


def test_adc_model_throughput_trq(benchmark):
    """Micro-benchmark: vectorised twin-range conversion of a large BL block."""
    adc = TwinRangeAdc(TRQParams(n_r1=2, n_r2=4, m=4, delta_r1=1.0))
    values = np.random.default_rng(0).uniform(0, 128, size=200_000)
    benchmark(adc.convert, values)
