"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one figure (or ablation) of the paper.
Workload preparation (training + PTQ) is shared through a session fixture and
cached on disk under ``benchmarks/.cache`` so repeated benchmark runs skip
training.

Scale knobs (environment variables):

* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload names.  Defaults to
  ``lenet5,resnet20``; set it to
  ``lenet5,resnet20,resnet18,squeezenet1_1`` to regenerate the figures over
  all four networks of the paper (slower).
* ``REPRO_BENCH_PRESET`` — model preset (``tiny`` default, ``small``/``paper``).
* ``REPRO_BENCH_EVAL_IMAGES`` — evaluation images per workload (default 32).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.workloads import PreparedWorkload, prepare_workload

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Sensing precisions swept in Fig. 6 (paper: 8, 7, 6, 5, 4).
FIG6_BITS = (8, 7, 6, 5, 4)

#: The one benchmark-wide workload-preparation budget.  Everything that
#: prepares a benchmark workload — the session fixture below AND any
#: spec-driven `repro.experiments` sweep that wants to share the trained
#: weight cache with it — must build its configuration from these, so the
#: definitions cannot drift apart.
WORKLOAD_TRAIN_SIZE = 256
WORKLOAD_TEST_SIZE = 96
WORKLOAD_CALIBRATION_IMAGES = 32
WORKLOAD_SEED = 0


def workload_epochs(name: str) -> int:
    """Per-workload training budget of the benchmark suite."""
    return 20 if name == "lenet5" else 12


def _selected_workloads() -> list:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "lenet5,resnet20")
    return [name.strip() for name in raw.split(",") if name.strip()]


def _preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "tiny")


def eval_image_count() -> int:
    return int(os.environ.get("REPRO_BENCH_EVAL_IMAGES", "32"))


@pytest.fixture(scope="session")
def workloads() -> Dict[str, PreparedWorkload]:
    """Trained + quantized workloads shared by every benchmark."""
    prepared = {}
    for name in _selected_workloads():
        prepared[name] = prepare_workload(
            name,
            preset=_preset(),
            train_size=WORKLOAD_TRAIN_SIZE,
            test_size=WORKLOAD_TEST_SIZE,
            calibration_images=WORKLOAD_CALIBRATION_IMAGES,
            epochs=workload_epochs(name),
            seed=WORKLOAD_SEED,
            cache_dir=str(CACHE_DIR),
        )
    return prepared


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
