"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one figure (or ablation) of the paper.
Workload preparation (training + PTQ) is shared through a session fixture and
cached on disk under ``benchmarks/.cache`` so repeated benchmark runs skip
training.

Scale knobs (environment variables):

* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload names.  Defaults to
  ``lenet5,resnet20``; set it to
  ``lenet5,resnet20,resnet18,squeezenet1_1`` to regenerate the figures over
  all four networks of the paper (slower).
* ``REPRO_BENCH_PRESET`` — model preset (``tiny`` default, ``small``/``paper``).
* ``REPRO_BENCH_EVAL_IMAGES`` — evaluation images per workload (default 32).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.presets import (
    BENCH_CALIBRATION_IMAGES,
    BENCH_SEED,
    BENCH_TEST_SIZE,
    BENCH_TRAIN_SIZE,
    FIG6_SENSING_BITS,
    benchmark_epochs,
)
from repro.workloads import PreparedWorkload, prepare_workload

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Sensing precisions swept in Fig. 6 (paper: 8, 7, 6, 5, 4).
FIG6_BITS = FIG6_SENSING_BITS

#: The one benchmark-wide workload-preparation budget.  The constants live
#: in :mod:`repro.experiments.presets` (the figure presets are built from
#: them) and are re-exported here for the fixtures and legacy imports, so
#: the session fixture below and every spec-driven `repro.experiments`
#: sweep share the same trained-weight cache and can never drift apart.
WORKLOAD_TRAIN_SIZE = BENCH_TRAIN_SIZE
WORKLOAD_TEST_SIZE = BENCH_TEST_SIZE
WORKLOAD_CALIBRATION_IMAGES = BENCH_CALIBRATION_IMAGES
WORKLOAD_SEED = BENCH_SEED


def workload_epochs(name: str) -> int:
    """Per-workload training budget of the benchmark suite."""
    return benchmark_epochs(name)


def _selected_workloads() -> list:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "lenet5,resnet20")
    return [name.strip() for name in raw.split(",") if name.strip()]


def _preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "tiny")


def eval_image_count() -> int:
    return int(os.environ.get("REPRO_BENCH_EVAL_IMAGES", "32"))


@pytest.fixture(scope="session")
def workloads() -> Dict[str, PreparedWorkload]:
    """Trained + quantized workloads shared by every benchmark."""
    prepared = {}
    for name in _selected_workloads():
        prepared[name] = prepare_workload(
            name,
            preset=_preset(),
            train_size=WORKLOAD_TRAIN_SIZE,
            test_size=WORKLOAD_TEST_SIZE,
            calibration_images=WORKLOAD_CALIBRATION_IMAGES,
            epochs=workload_epochs(name),
            seed=WORKLOAD_SEED,
            cache_dir=str(CACHE_DIR),
        )
    return prepared


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
