"""Bit-line value distribution analysis (paper Fig. 3a and Section IV-B).

Collects the analog values appearing at the crossbar bit lines of a trained
network, prints a text histogram per layer, and shows how the co-design
search classifies each layer's distribution (ideal / normal / other) — the
information Algorithm 1 uses to pick its search strategy.

Run with:  python examples/distribution_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import summarize_distribution
from repro.report import ascii_bar_chart, format_table
from repro.workloads import prepare_workload


def main() -> None:
    workload = prepare_workload(
        "resnet20", preset="tiny", train_size=256, test_size=64,
        calibration_images=16, seed=1,
    )
    print(f"workload: {workload.name} ({workload.preset}), "
          f"float accuracy {workload.float_accuracy:.3f}\n")

    samples_by_layer = workload.simulator.collect_bitline_distributions(
        workload.calibration.images[:8], batch_size=8, capacity_per_layer=50_000
    )

    rows = []
    for name, samples in samples_by_layer.items():
        summary = summarize_distribution(samples)
        rows.append({
            "layer": name,
            "type": summary.kind.value,
            "max": round(summary.maximum, 1),
            "mean": round(summary.mean, 2),
            "skewness": round(summary.skewness, 2),
            "mass in low 1/8": round(summary.mass_in_low_eighth, 2),
            "modes": summary.num_modes,
        })
    print("Per-layer distribution classification (Algorithm 1, line 5):")
    print(format_table(rows))

    # Histogram of one representative convolution layer, Fig. 3a style.
    name = rows[len(rows) // 2]["layer"]
    samples = samples_by_layer[name]
    counts, edges = np.histogram(samples, bins=16)
    chart = {
        f"[{edges[i]:5.1f},{edges[i + 1]:5.1f})": int(count)
        for i, count in enumerate(counts)
    }
    print(f"\nValue histogram of layer '{name}' "
          f"({samples.size} sampled bit-line values):")
    print(ascii_bar_chart(chart, width=50))
    print("\nThe mass concentrates near zero with a sparse tail — exactly the "
          "imbalance the paper's Twin-Range Quantization exploits.")


if __name__ == "__main__":
    main()
