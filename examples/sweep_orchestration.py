"""Experiment orchestration quickstart: declarative, cached, parallel sweeps.

This example walks the :mod:`repro.experiments` subsystem end to end:

1. declare a multi-workload Monte Carlo robustness sweep as a
   :class:`~repro.experiments.SweepSpec` grid (workloads × noise scenarios ×
   Monte Carlo seeds),
2. expand it into content-addressed atomic jobs and inspect their keys,
3. run it serially — every finished job lands in the result store,
4. re-run it — everything is served from the store (this is also how an
   interrupted sweep resumes),
5. run it with two worker processes into a fresh store and verify the
   ordered rows are byte-identical to the serial run (derived-seed
   determinism across process boundaries),
6. print the aggregate table.

The same sweep is available on the command line::

    python -m repro.experiments run multi-workload-robustness --smoke --jobs 2

Run with:  python examples/sweep_orchestration.py           (full)
           python examples/sweep_orchestration.py --smoke   (CI-fast)
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (  # noqa: E402
    NoiseScenario,
    ResultStore,
    SweepSpec,
    WorkloadSpec,
    clear_runner_memos,
    job_key,
    run_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny budgets for CI")
    args = parser.parse_args()

    if args.smoke:
        names = ("lenet5",)
        train_size, epochs, images, trials = 96, 3, 6, 2
    else:
        names = ("lenet5", "resnet20", "squeezenet1_1")
        train_size, epochs, images, trials = 256, 12, 24, 4

    print("=== 1. Declare the sweep ===")
    sweep = SweepSpec(
        name="example-orchestration",
        kind="monte_carlo",
        workloads=[
            WorkloadSpec(name, preset="tiny", train_size=train_size,
                         test_size=max(images, 32), calibration_images=16,
                         epochs=epochs, seed=0)
            for name in names
        ],
        noises=[
            NoiseScenario(label={"sigma": 0.0}),  # runs as the clean reference
            NoiseScenario(
                models=[{"model": "gaussian_read_noise", "sigma": 0.5},
                        {"model": "stuck_at_faults", "rate_on": 1e-3}],
                label={"sigma": 0.5},
            ),
        ],
        mc_seeds=[0, 1],
        trials=trials,
        images=images,
    )
    print(f"  grid: {len(sweep.workloads)} workloads x {len(sweep.noises)} noise "
          f"scenarios x {len(sweep.mc_seeds)} MC seeds")

    print("\n=== 2. Expand into content-addressed jobs ===")
    jobs = sweep.expand()
    for job in jobs:
        print(f"  {job_key(job)[:16]}  {job.kind:12s} {job.label_dict}")

    base = Path(tempfile.mkdtemp(prefix="sweep-example-"))
    weights = str(Path(__file__).resolve().parent.parent / "benchmarks" / ".cache")

    print("\n=== 3. Serial run (cold store) ===")
    serial = run_sweep(sweep, base / "store", weights_cache_dir=weights, progress=print)
    print(f"  computed {serial.stats.computed}, cached {serial.stats.cached}, "
          f"{serial.stats.elapsed_s:.1f}s")

    print("\n=== 4. Re-run: served from the store (how --resume works) ===")
    rerun = run_sweep(sweep, base / "store", weights_cache_dir=weights)
    print(f"  computed {rerun.stats.computed}, cached {rerun.stats.cached}, "
          f"{rerun.stats.elapsed_s:.2f}s")
    assert rerun.stats.computed == 0
    assert rerun.rows == serial.rows

    print("\n=== 5. Two workers, fresh store: byte-identical ordered rows ===")
    clear_runner_memos()  # start cold, like a fresh process would
    parallel = run_sweep(sweep, base / "store-parallel", jobs=2,
                         weights_cache_dir=weights)
    identical = json.dumps(parallel.rows, sort_keys=True) == \
        json.dumps(serial.rows, sort_keys=True)
    print(f"  parallel rows byte-identical to serial: {identical}")
    assert identical, "derived-seed determinism broke across process boundaries"

    print("\n=== 6. Aggregate table ===")
    print(serial.record.to_table())


if __name__ == "__main__":
    main()
