"""Accelerator power/energy breakdown (paper Fig. 7).

Builds the ISAAC-style workload mapping of a network, measures the per-layer
A/D operation counts with the calibrated TRQ configuration, and prints the
per-component energy breakdown for the ISAAC baseline, the TRQ design and a
reduced-resolution uniform ADC.

Run with:  python examples/power_breakdown.py
"""

from __future__ import annotations

from repro.arch import AcceleratorMapping, PowerModel, compare_configurations
from repro.core import CoDesignOptimizer, SearchSpaceConfig
from repro.nn.models import workload_info
from repro.report import ascii_bar_chart, format_table
from repro.workloads import prepare_workload


def main() -> None:
    workload = prepare_workload(
        "resnet20", preset="tiny", train_size=256, test_size=64,
        calibration_images=16, seed=1,
    )
    info = workload_info(workload.name)
    eval_split = workload.eval_split(32)

    # Calibrate TRQ and measure per-layer mean A/D operations per conversion.
    optimizer = CoDesignOptimizer(
        workload.model, workload.calibration.images, workload.calibration.labels,
        search_space=SearchSpaceConfig(num_v_grid_candidates=12),
    )
    result = optimizer.run(eval_split.images, eval_split.labels, batch_size=16,
                           use_accuracy_loop=False, initial_n_max=4)
    trq_eval = workload.simulator.evaluate(
        eval_split.images, eval_split.labels, result.adc_configs, batch_size=16
    )
    trq_ops = {
        name: stats.mean_ops_per_conversion
        for name, stats in trq_eval.layer_stats.items()
    }

    image_shape = (info["in_channels"], info["image_size"], info["image_size"])
    mapping = AcceleratorMapping(workload.quantized, image_shape)
    comparison = compare_configurations(
        workload.name, mapping, trq_ops, uniform_bits=7, power_model=PowerModel()
    )

    rows = []
    for breakdown in comparison.breakdowns:
        row = {"config": breakdown.label, "total (nJ/inference)": round(breakdown.total * 1e9, 1)}
        row.update({k: round(v * 1e9, 1) for k, v in breakdown.per_component.items()})
        rows.append(row)
    print(f"workload: {workload.name}; accelerator mapping: {mapping.summary()}")
    print(format_table(rows))

    baseline = comparison.by_label("ISAAC")
    ours = comparison.by_label("Ours/4b")
    print("\nISAAC baseline component shares:")
    print(ascii_bar_chart({k: round(v, 3) for k, v in baseline.fractions().items()}))
    print(f"\nADC energy reduction (Ours vs ISAAC):   "
          f"{comparison.adc_reduction_vs_baseline('Ours/4b'):.2f}x")
    print(f"Total energy reduction (Ours vs ISAAC): "
          f"{comparison.total_reduction_vs_baseline('Ours/4b'):.2f}x")
    print(f"TRQ accuracy on the evaluation subset:  {trq_eval.accuracy:.3f} "
          f"(ideal {result.baseline_accuracy:.3f})")


if __name__ == "__main__":
    main()
