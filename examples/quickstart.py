"""Quickstart: run the full algorithm-hardware co-design pipeline on one model.

This script walks through exactly what the paper proposes, end to end:

1. train a small CNN on a synthetic dataset (stand-in for a pretrained model),
2. post-training quantize it to the 8-bit PIM datapath,
3. simulate inference on the ReRAM crossbar + SAR-ADC accelerator,
4. calibrate the Twin-Range Quantization parameters per layer (Algorithm 1),
5. compare accuracy and A/D-operation counts against the uniform-ADC baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CoDesignOptimizer, SearchSpaceConfig, uniform_adc_configs
from repro.report import format_table
from repro.workloads import prepare_workload


def main() -> None:
    print("=== 1. Prepare workload (train LeNet-5 on synthetic MNIST) ===")
    workload = prepare_workload(
        "lenet5", preset="small", train_size=384, test_size=128,
        calibration_images=32, seed=0,
    )
    print(f"float accuracy: {workload.float_accuracy:.3f}")

    eval_split = workload.eval_split(96)
    images, labels = eval_split.images, eval_split.labels
    simulator = workload.simulator

    print("\n=== 2. Ideal-conversion reference (8-bit PTQ, lossless ADC) ===")
    baseline = simulator.evaluate(images, labels, adc_configs=None, batch_size=16)
    print(f"accuracy: {baseline.accuracy:.3f}  "
          f"A/D conversions per image: {baseline.total_conversions // baseline.num_images}")

    print("\n=== 3. Uniform low-resolution ADC baseline ===")
    samples = simulator.collect_bitline_distributions(
        workload.calibration.images[:16], batch_size=8
    )
    rows = []
    for bits in (8, 6, 4):
        result = simulator.evaluate(
            images, labels, uniform_adc_configs(samples, bits=bits), batch_size=16
        )
        rows.append({"config": f"uniform {bits}b", "accuracy": result.accuracy,
                     "remaining A/D ops": result.remaining_ops_fraction})
    print(format_table(rows))

    print("\n=== 4. Twin-Range Quantization co-design (Algorithm 1) ===")
    optimizer = CoDesignOptimizer(
        workload.model,
        workload.calibration.images,
        workload.calibration.labels,
        search_space=SearchSpaceConfig(num_v_grid_candidates=20),
        accuracy_threshold=0.02,
    )
    result = optimizer.run(images, labels, batch_size=16,
                           use_accuracy_loop=False, initial_n_max=4)

    print(f"TRQ accuracy:          {result.final_accuracy:.3f} "
          f"(ideal {result.baseline_accuracy:.3f})")
    print(f"remaining A/D ops:     {result.remaining_ops_fraction:.2%}")
    print(f"A/D energy reduction:  {result.ops_reduction_factor:.2f}x")

    print("\nPer-layer decisions:")
    layer_rows = []
    for name, layer in result.calibration.layers.items():
        setting = layer.setting
        layer_rows.append({
            "layer": name,
            "distribution": layer.summary.kind.value,
            "scheme": "TRQ" if setting.use_trq else f"uniform {setting.uniform_bits}b",
            "NR1": setting.trq.n_r1 if setting.use_trq else "-",
            "NR2": setting.trq.n_r2 if setting.use_trq else "-",
            "M": setting.trq.m if setting.use_trq else "-",
            "mean ops/conv": round(layer.predicted_mean_ops, 2),
        })
    print(format_table(layer_rows))


if __name__ == "__main__":
    main()
