"""Accuracy vs ADC sensing precision, uniform vs TRQ (paper Fig. 6a/6b).

For one workload, sweeps the ADC sensing precision from 8 down to 3 bits and
compares the conventional uniform SAR ADC against the calibrated Twin-Range
configuration at the same bit budget.

Run with:  python examples/adc_resolution_sweep.py
"""

from __future__ import annotations

from repro.core import CoDesignOptimizer, SearchSpaceConfig, uniform_adc_configs
from repro.report import format_table
from repro.workloads import prepare_workload


def main() -> None:
    workload = prepare_workload(
        "lenet5", preset="small", train_size=384, test_size=128,
        calibration_images=32, seed=0,
    )
    eval_split = workload.eval_split(96)
    images, labels = eval_split.images, eval_split.labels
    simulator = workload.simulator

    ideal = simulator.evaluate(images, labels, None, batch_size=16)
    samples = simulator.collect_bitline_distributions(
        workload.calibration.images[:16], batch_size=8
    )
    optimizer = CoDesignOptimizer(
        workload.model, workload.calibration.images, workload.calibration.labels,
        search_space=SearchSpaceConfig(num_v_grid_candidates=16),
    )

    rows = [{
        "ADC bits": "ideal", "uniform acc": round(ideal.accuracy, 3),
        "TRQ acc": round(ideal.accuracy, 3), "uniform ops/conv": 8.0, "TRQ ops/conv": 8.0,
    }]
    for bits in (8, 7, 6, 5, 4, 3):
        uniform = simulator.evaluate(
            images, labels, uniform_adc_configs(samples, bits=bits), batch_size=16
        )
        trq = optimizer.run(images, labels, batch_size=16,
                            use_accuracy_loop=False, initial_n_max=bits)
        rows.append({
            "ADC bits": bits,
            "uniform acc": round(uniform.accuracy, 3),
            "TRQ acc": round(trq.final_accuracy, 3),
            "uniform ops/conv": round(uniform.total_operations / uniform.total_conversions, 2),
            "TRQ ops/conv": round(
                trq.evaluation_summary["mean_ops_per_conversion"], 2
            ),
        })

    print(f"workload: {workload.name}, float accuracy {workload.float_accuracy:.3f}")
    print(format_table(rows))
    print(
        "\nExpected shape (paper Fig. 6): the uniform ADC loses accuracy as the "
        "sensing precision drops, while TRQ holds accuracy close to the ideal "
        "reference down to ~4 bits at a lower average A/D-operation count."
    )


if __name__ == "__main__":
    main()
