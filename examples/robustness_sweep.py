"""Robustness quickstart: Monte Carlo accuracy under device non-idealities.

This example walks the noise/robustness workflow end to end:

1. prepare a trained + quantized LeNet-5 workload,
2. compose a device non-ideality stack from the registry-driven models
   (read noise, conductance variation, stuck-at faults, retention drift),
3. verify that the fast and reference engines agree bit for bit under noise
   (the keyed-sampling guarantee of ``repro.nonideal``),
4. run Monte Carlo robustness trials (``PimSimulator.run_monte_carlo``) over
   a small sigma sweep and print mean ± std accuracy with confidence
   intervals and per-layer degradation statistics.

Run with:  python examples/robustness_sweep.py           (full)
           python examples/robustness_sweep.py --smoke   (CI-fast)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.adc import twin_range_config  # noqa: E402
from repro.core import TRQParams  # noqa: E402
from repro.nonideal import (  # noqa: E402
    ConductanceVariation,
    GaussianReadNoise,
    NonIdealityStack,
    RetentionDrift,
    StuckAtFaults,
    registered_models,
)
from repro.sim import PimSimulator  # noqa: E402
from repro.workloads import prepare_workload  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny budgets for CI")
    args = parser.parse_args()

    if args.smoke:
        train_size, epochs, images, trials = 128, 6, 8, 2
        sigmas = (0.0, 0.5)
    else:
        train_size, epochs, images, trials = 256, 20, 48, 8
        sigmas = (0.0, 0.25, 0.5, 1.0)

    print("=== 1. Prepare workload ===")
    workload = prepare_workload(
        "lenet5", preset="tiny", train_size=train_size, test_size=max(images, 32),
        calibration_images=16, epochs=epochs, seed=0,
        # Shared with benchmarks/ so CI's smoke steps train the workload once.
        cache_dir=str(Path(__file__).resolve().parent.parent / "benchmarks" / ".cache"),
    )
    split = workload.eval_split(images)
    params = TRQParams(n_r1=2, n_r2=5, m=3, delta_r1=1.0, bias=0)
    configs = {
        name: twin_range_config(params)
        for name in workload.simulator.layer_names()
    }
    print(f"registered non-ideality models: {', '.join(registered_models())}")

    print("\n=== 2. Compose a device non-ideality stack ===")
    stack = NonIdealityStack(
        [
            ConductanceVariation(sigma=0.05),
            StuckAtFaults(rate_on=1e-3, rate_off=1e-3),
            RetentionDrift(time=24.0, nu=0.03),
            GaussianReadNoise(sigma=0.5),
        ],
        seed=0,
    )
    for spec in stack.specs():
        print(f"  {spec}")

    print("\n=== 3. Fast vs reference engines are bit-identical under noise ===")
    logits = {}
    for engine in ("reference", "fast"):
        sim = PimSimulator(workload.quantized, engine=engine)
        logits[engine] = sim.evaluate(
            split.images[:4], split.labels[:4], configs, batch_size=4, noise=stack
        ).logits
    identical = np.array_equal(logits["reference"], logits["fast"])
    print(f"  bit-identical noisy logits: {identical}")
    assert identical, "keyed sampling broke engine bit-parity"

    print("\n=== 4. Monte Carlo robustness sweep (read-noise sigma) ===")
    simulator = workload.simulator
    for sigma in sigmas:
        sweep_stack = NonIdealityStack(
            [ConductanceVariation(sigma=0.05), GaussianReadNoise(sigma=sigma)],
            seed=0,
        )
        result = simulator.run_monte_carlo(
            split.images, split.labels, sweep_stack,
            adc_configs=configs, trials=trials, batch_size=16, seed=0,
        )
        low, high = result.accuracy_ci
        print(f"  sigma={sigma:4.2f}: acc {result.mean_accuracy:.3f} "
              f"± {result.std_accuracy:.3f} (CI [{low:.3f}, {high:.3f}]), "
              f"drop {result.mean_accuracy_drop:+.3f}, "
              f"flips {result.mean_flip_rate:.3f}")

    print("\n=== 5. Per-layer degradation (last sweep point) ===")
    for name, layer in result.layer_stats.items():
        print(f"  {name:14s} remaining-ops {layer.clean_remaining_fraction:.3f} "
              f"-> {layer.mean_remaining_fraction:.3f} ± {layer.std_remaining_fraction:.3f}   "
              f"R1-share {layer.clean_r1_fraction:.3f} -> "
              f"{layer.mean_r1_fraction:.3f} ± {layer.std_r1_fraction:.3f}")


if __name__ == "__main__":
    main()
